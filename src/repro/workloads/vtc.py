"""MPEG-4 Visual Texture deCoder (VTC) workload.

The paper's second case study is the MPEG-4 VTC still-texture decoder, a
wavelet-based image codec.  Its *dynamic* memory behaviour (the part that
goes through ``malloc``/``free`` and therefore through the explored
allocators) is dominated by a very large population of small zero-tree node
objects created and destroyed while each wavelet level is decoded, plus
short-lived bitstream-segment and stripe buffers.  The big framebuffer-style
arrays (output texture, full-resolution coefficient planes) are statically
allocated by the reference decoder and therefore do **not** appear in the
allocation trace — modelling them as dynamic objects would drown the
allocator behaviour in data the allocator never manages.

The generator reproduces that phase structure for a configurable image size
and number of wavelet decomposition levels:

1. *bitstream parsing*   — short-lived segment buffers per decoded chunk,
2. *zero-tree decoding*  — thousands of small tree-node objects per level,
   live until the level's inverse transform completes,
3. *inverse wavelet*     — per-stripe working buffers (a few KB each),
   recycled stripe by stripe.

The proprietary reference decoder is unavailable; this synthetic generator
reproduces the size mix, population and phase structure the allocator
observes, which is what the exploration results depend on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..profiling.tracer import AllocationTrace
from .base import TraceBuilder, Workload

#: Size in bytes of one zero-tree node object (coefficient + children links).
TREE_NODE_BYTES = 36
#: Size in bytes of one parsed bitstream segment buffer.
BITSTREAM_SEGMENT_BYTES = 256
#: Size in bytes of one inverse-wavelet stripe working buffer.
STRIPE_BUFFER_BYTES = 2048


@dataclass
class VTCWorkload(Workload):
    """Synthetic MPEG-4 VTC still-texture decoding trace generator.

    Parameters
    ----------
    image_width / image_height:
        Texture dimensions in pixels; node and stripe counts scale with them.
    wavelet_levels:
        Number of wavelet decomposition levels (phases of the decoder).
    coefficients_per_node:
        How many wavelet coefficients one decoded zero-tree node covers;
        smaller values mean more node allocations per level.
    """

    image_width: int = 256
    image_height: int = 256
    wavelet_levels: int = 5
    coefficients_per_node: int = 16
    name: str = "vtc"

    def __post_init__(self) -> None:
        if self.image_width <= 0 or self.image_height <= 0:
            raise ValueError("image dimensions must be positive")
        if self.wavelet_levels <= 0:
            raise ValueError("wavelet_levels must be positive")
        if self.coefficients_per_node <= 0:
            raise ValueError("coefficients_per_node must be positive")

    # -- generation -----------------------------------------------------------

    def _coefficients_at_level(self, level: int) -> int:
        """Number of wavelet coefficients at decomposition ``level`` (0 = finest)."""
        return max(1, (self.image_width * self.image_height) // (4**level))

    def generate(self, seed: int = 0) -> AllocationTrace:
        """Produce one decode run: per wavelet level, bitstream-segment
        parsing, zero-tree node construction and stripe-buffered inverse
        transform, with the level's nodes released once it reconstructs."""
        builder = TraceBuilder(self.name, seed)
        rng = builder.rng

        # Decode from the coarsest level to the finest (as the standard does).
        for level in reversed(range(self.wavelet_levels)):
            coefficients = self._coefficients_at_level(level)
            nodes = max(8, coefficients // self.coefficients_per_node)

            # Phase 1: bitstream parsing for this level.
            segments = max(2, nodes // 32)
            for _ in range(segments):
                builder.allocate(
                    BITSTREAM_SEGMENT_BYTES,
                    lifetime=rng.randint(2, 8),
                    tag=f"bitstream_l{level}",
                )
                builder.tick()
                builder.flush_due()

            # Phase 2: zero-tree nodes, live until the level is reconstructed.
            node_ids = []
            for _ in range(nodes):
                jitter = rng.choice((0, 0, 0, 4, 8))  # occasional larger nodes
                node_ids.append(
                    builder.allocate(TREE_NODE_BYTES + jitter, tag=f"tree_node_l{level}")
                )
                if len(node_ids) % 32 == 0:
                    builder.tick()

            # Phase 3: inverse wavelet, stripe by stripe.  Each stripe uses a
            # working buffer that is released before the next stripe starts.
            stripes = max(2, self.image_height // (8 * (level + 1)))
            for _ in range(stripes):
                stripe_id = builder.allocate(STRIPE_BUFFER_BYTES, tag=f"stripe_l{level}")
                builder.tick(2)
                builder.release(stripe_id, tag=f"stripe_l{level}")

            # The level's reconstruction consumes the tree nodes.
            builder.tick(4)
            rng.shuffle(node_ids)
            for request_id in node_ids:
                builder.release(request_id, tag=f"tree_node_l{level}")
            builder.tick(2)
            builder.flush_due()

        return builder.finish()

    # -- introspection -----------------------------------------------------------

    def hot_sizes(self) -> list[int]:
        """Dedicated-pool candidates: tree nodes, segments, stripe buffers."""
        return [TREE_NODE_BYTES, BITSTREAM_SEGMENT_BYTES, STRIPE_BUFFER_BYTES]

    def describe(self) -> str:
        """One-line description: texture dimensions and wavelet depth."""
        return (
            f"MPEG-4 VTC still texture decoding of a "
            f"{self.image_width}x{self.image_height} texture, "
            f"{self.wavelet_levels} wavelet levels"
        )


def vtc_reference_trace(seed: int = 2006, image_size: int = 256) -> AllocationTrace:
    """The canonical VTC trace used by examples and benchmarks (fixed seed)."""
    return VTCWorkload(image_width=image_size, image_height=image_size).generate(seed=seed)
