"""Subprocess harness for the distributed exploration service tests.

This file plays two roles:

* **imported by tests** — :func:`spawn_coordinator` / :func:`spawn_worker`
  launch real OS processes (``sys.executable`` running *this file*) and
  wrap them in :class:`ManagedProcess`, which pumps stdout on a thread so
  tests can wait for log lines ("listening on HOST:PORT", per-lease
  statistics) without deadlocking on a full pipe;
* **executed as a subprocess entry point** — ``python tests/distrib_harness.py
  serve SPEC.json ...`` / ``... worker HOST:PORT ...`` run a coordinator or
  worker, optionally wrapped in a **chaos** subclass that injects one
  specific fault through the documented override seams.

Chaos modes (``--chaos KIND[:N]``):

=====================  ===========  ========================================
kind                   role         fault injected
=====================  ===========  ========================================
``kill-after:N``       worker       SIGKILL itself right *after* reporting
                                    its N-th lease complete (range is done,
                                    but the worker vanishes without goodbye)
``kill-before:N``      worker       SIGKILL itself right *before* reporting
                                    its N-th lease complete (all points are
                                    in the store, the lease must expire and
                                    be re-leased)
``drop-heartbeat:N``   worker       silently skip the first N heartbeats it
                                    would have sent
``torn-write:N``       worker       on its N-th store append, write only
                                    half the entry line and SIGKILL itself
                                    mid-append (a torn write the loader
                                    must recover from)
``stall:SECONDS``      worker       evaluate the first lease fully, then
                                    sit silent for SECONDS before reporting
                                    it complete (no heartbeats flow while
                                    stalled, so the lease expires and the
                                    range is re-leased; the late completion
                                    must still be tolerated)
``delay-ack:SECONDS``  coordinator  sleep before sending every ``ack``
=====================  ===========  ========================================

The chaos classes subclass the production :class:`Worker` /
:class:`Coordinator` and override only the designated seams
(``_lease_complete``, ``_send_heartbeat``, ``_prepare_store``, ``_send``)
— the protocol and state machines under test are the production ones.
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
HARNESS = Path(__file__).resolve()

if str(REPO_ROOT / "src") not in sys.path:  # subprocess entry has no conftest
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.spec import ExperimentSpec  # noqa: E402
from repro.distrib import Coordinator, Worker, parse_address  # noqa: E402

LISTENING = re.compile(r"listening on ([^\s:]+):(\d+)")


# -- chaos subclasses (subprocess side) -------------------------------------


class KillAroundCompleteWorker(Worker):
    """SIGKILL self before/after the N-th lease-complete message."""

    def __init__(self, *args, fatal_lease: int = 1, phase: str = "after", **kwargs):
        super().__init__(*args, **kwargs)
        self.fatal_lease = fatal_lease
        self.phase = phase  # "before" | "after" the complete round trip

    def _lease_complete(self, lease_id: int) -> None:
        fatal = self.leases_completed + 1 >= self.fatal_lease
        if fatal and self.phase == "before":
            self.log(f"{self.name}: chaos: SIGKILL before completing {lease_id}")
            os.kill(os.getpid(), signal.SIGKILL)
        super()._lease_complete(lease_id)
        if fatal and self.phase == "after":
            self.log(f"{self.name}: chaos: SIGKILL after completing {lease_id}")
            os.kill(os.getpid(), signal.SIGKILL)


class DropHeartbeatWorker(Worker):
    """Silently drop the first N heartbeats (tests lease expiry)."""

    def __init__(self, *args, drop: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        self._to_drop = drop

    def _send_heartbeat(self, lease_id: int) -> None:
        if self._to_drop > 0:
            self._to_drop -= 1
            self.log(f"{self.name}: chaos: dropping heartbeat for lease {lease_id}")
            return
        super()._send_heartbeat(lease_id)


class TornWriteWorker(Worker):
    """Die mid-append: the N-th store put writes half a line, then SIGKILL."""

    def __init__(self, *args, fatal_put: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        self.fatal_put = fatal_put

    def _prepare_store(self, store) -> None:
        remaining = self.fatal_put
        intact_append = store._append

        def torn_append(data: bytes) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining > 0:
                intact_append(data)
                return
            cut = max(1, len(data) // 2)
            os.write(store._ensure_fd(), data[:cut])
            self.log(
                f"{self.name}: chaos: torn write ({cut}/{len(data)} bytes); SIGKILL"
            )
            os.kill(os.getpid(), signal.SIGKILL)

        store._append = torn_append


class StallingWorker(Worker):
    """Go silent between finishing the first lease and reporting it.

    The evaluation itself completes (every point is committed), but the
    worker neither heartbeats nor completes for ``stall`` seconds — long
    enough, with a short lease timeout, for the coordinator to expire the
    lease and hand the range to someone else.  The eventual late
    ``complete`` exercises the expired-lease tolerance path.
    """

    def __init__(self, *args, stall: float = 3.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.stall = stall

    def _lease_complete(self, lease_id: int) -> None:
        if self.leases_completed == 0 and self.stall > 0:
            self.log(f"{self.name}: chaos: stalling {self.stall:g}s before "
                     f"completing lease {lease_id}")
            time.sleep(self.stall)
        super()._lease_complete(lease_id)


class DelayAckCoordinator(Coordinator):
    """Sleep before every ``ack`` (slow-coordinator latency injection)."""

    def __init__(self, *args, ack_delay: float = 0.5, **kwargs):
        self.ack_delay = ack_delay
        super().__init__(*args, **kwargs)

    def _send(self, connection, message: dict) -> None:
        if message.get("type") == "ack" and self.ack_delay > 0:
            time.sleep(self.ack_delay)
        super()._send(connection, message)


def _parse_chaos(text: str | None) -> tuple[str, float]:
    if not text:
        return "", 0.0
    kind, _, amount = text.partition(":")
    return kind, float(amount or 1)


# -- subprocess entry points ------------------------------------------------


def _run_serve(args: argparse.Namespace) -> int:
    spec = ExperimentSpec.from_json(args.experiment)
    kind, amount = _parse_chaos(args.chaos)
    options = dict(
        host=args.host,
        port=args.port,
        lease_size=args.lease_size,
        lease_timeout=args.lease_timeout,
        store_path=args.store,
    )
    if kind == "delay-ack":
        coordinator = DelayAckCoordinator(spec, ack_delay=amount, **options)
    elif kind:
        raise SystemExit(f"unknown coordinator chaos kind {kind!r}")
    else:
        coordinator = Coordinator(spec, **options)
    database = coordinator.serve()
    if args.out:
        database.to_json(args.out)
    return 0


def _run_worker(args: argparse.Namespace) -> int:
    address = parse_address(args.address)
    kind, amount = _parse_chaos(args.chaos)
    options = dict(spec_hash=args.spec_hash, name=args.name)
    if kind == "kill-after":
        worker = KillAroundCompleteWorker(
            address, fatal_lease=int(amount), phase="after", **options
        )
    elif kind == "kill-before":
        worker = KillAroundCompleteWorker(
            address, fatal_lease=int(amount), phase="before", **options
        )
    elif kind == "drop-heartbeat":
        worker = DropHeartbeatWorker(address, drop=int(amount), **options)
    elif kind == "torn-write":
        worker = TornWriteWorker(address, fatal_put=int(amount), **options)
    elif kind == "stall":
        worker = StallingWorker(address, stall=amount, **options)
    elif kind:
        raise SystemExit(f"unknown worker chaos kind {kind!r}")
    else:
        worker = Worker(address, **options)
    return worker.run()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run a (possibly chaotic) coordinator")
    serve.add_argument("experiment", type=Path)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--lease-size", type=int, default=None)
    serve.add_argument("--lease-timeout", type=float, default=None)
    serve.add_argument("--store", type=Path, default=None)
    serve.add_argument("--out", type=Path, default=None)
    serve.add_argument("--chaos", default="")

    worker = commands.add_parser("worker", help="run a (possibly chaotic) worker")
    worker.add_argument("address")
    worker.add_argument("--name", default="")
    worker.add_argument("--spec-hash", default="")
    worker.add_argument("--chaos", default="")

    args = parser.parse_args(argv)
    if args.command == "serve":
        return _run_serve(args)
    return _run_worker(args)


# -- test-side process management -------------------------------------------


class ManagedProcess:
    """A harness subprocess with its stdout pumped on a daemon thread.

    Pumping keeps the pipe from filling (which would deadlock the child)
    and lets tests block on specific log lines with :meth:`wait_for_line`.
    """

    def __init__(self, argv: list[str], name: str) -> None:
        self.name = name
        self.lines: list[str] = []
        self._condition = threading.Condition()
        self._eof = False
        self.process = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            cwd=REPO_ROOT,
        )
        self._pump = threading.Thread(target=self._drain, daemon=True)
        self._pump.start()

    def _drain(self) -> None:
        assert self.process.stdout is not None
        for line in self.process.stdout:
            with self._condition:
                self.lines.append(line.rstrip("\n"))
                self._condition.notify_all()
        with self._condition:
            self._eof = True
            self._condition.notify_all()

    def wait_for_line(self, pattern: str, timeout: float = 30.0) -> re.Match:
        """Block until a stdout line matches ``pattern``; returns the match."""
        compiled = re.compile(pattern)
        deadline = time.monotonic() + timeout
        scanned = 0
        with self._condition:
            while True:
                while scanned < len(self.lines):
                    match = compiled.search(self.lines[scanned])
                    scanned += 1
                    if match:
                        return match
                if self._eof:
                    raise AssertionError(
                        f"{self.name}: exited without matching {pattern!r}; "
                        f"output:\n" + "\n".join(self.lines)
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise AssertionError(
                        f"{self.name}: no line matching {pattern!r} within "
                        f"{timeout:g}s; output so far:\n" + "\n".join(self.lines)
                    )
                self._condition.wait(remaining)

    def wait(self, timeout: float = 60.0) -> int:
        """Wait for exit and the output pump; returns the exit code."""
        code = self.process.wait(timeout=timeout)
        self._pump.join(timeout=5.0)
        return code

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=5.0)

    @property
    def output(self) -> str:
        return "\n".join(self.lines)


def spawn_coordinator(
    experiment: Path,
    *,
    store: Path,
    out: Path | None = None,
    lease_size: int | None = None,
    lease_timeout: float | None = None,
    chaos: str = "",
) -> tuple[ManagedProcess, str]:
    """Start a coordinator subprocess; returns it plus its ``HOST:PORT``.

    Blocks until the coordinator announces the (ephemeral) port it bound.
    """
    argv = [
        sys.executable,
        str(HARNESS),
        "serve",
        str(experiment),
        "--store",
        str(store),
    ]
    if out is not None:
        argv += ["--out", str(out)]
    if lease_size is not None:
        argv += ["--lease-size", str(lease_size)]
    if lease_timeout is not None:
        argv += ["--lease-timeout", str(lease_timeout)]
    if chaos:
        argv += ["--chaos", chaos]
    process = ManagedProcess(argv, name="coordinator")
    match = process.wait_for_line(LISTENING.pattern)
    return process, f"{match.group(1)}:{match.group(2)}"


def spawn_worker(
    address: str,
    *,
    name: str,
    spec_hash: str = "",
    chaos: str = "",
) -> ManagedProcess:
    """Start a worker subprocess connected to ``address`` (``HOST:PORT``)."""
    argv = [sys.executable, str(HARNESS), "worker", address, "--name", name]
    if spec_hash:
        argv += ["--spec-hash", spec_hash]
    if chaos:
        argv += ["--chaos", chaos]
    return ManagedProcess(argv, name=name)


if __name__ == "__main__":
    raise SystemExit(main())
