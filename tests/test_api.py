"""Tests for the declarative experiment API (repro.api).

Covers the spec schema (round-trip, validation errors naming the offending
key), the canonical spec hash (execution-independence), the registries
(third-party registration usable from the Python API and the CLI), the
Experiment runner (byte-identity with direct engine construction and with
the legacy flag CLI, with and without a store), and the rule that the CLI
argparse defaults are derived from ExperimentSpec.
"""

import json

import pytest

from repro.api import (
    ComponentRef,
    Experiment,
    ExperimentSpec,
    SpecError,
    apply_overrides,
    default_spec_document,
    registry,
    run_experiment,
)
from repro.cli import build_parser, main
from repro.core.search import (
    DEFAULT_PRUNE_FRACTION,
    DEFAULT_SEARCH_BUDGET,
    SearchStrategy,
)


def small_spec(**overrides) -> ExperimentSpec:
    """A spec that runs in well under a second."""
    settings = dict(
        workload=ComponentRef("uniform", {"operations": 300}),
        space=ComponentRef("smoke"),
        seed=1,
    )
    settings.update(overrides)
    return ExperimentSpec(**settings)


class TestSpecRoundTrip:
    def test_to_dict_from_dict_identity(self):
        spec = small_spec(
            strategy=ComponentRef("random", {"budget": 16}),
            metrics=("accesses", "footprint"),
            sample=7,
            prune=True,
            prune_fraction=0.5,
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_through_text(self):
        spec = small_spec()
        text = spec.to_json()
        assert ExperimentSpec.from_json(text) == spec

    def test_json_round_trip_through_file(self, tmp_path):
        path = tmp_path / "exp.json"
        spec = small_spec(shard="2/3")
        spec.to_json(path)
        assert ExperimentSpec.from_json(path) == spec

    def test_string_shorthand_for_component_refs(self):
        spec = ExperimentSpec.from_dict(
            {"spec_version": 1, "workload": "uniform", "space": "smoke"}
        )
        assert spec.workload == ComponentRef("uniform")
        assert spec.space == ComponentRef("smoke")

    def test_comment_keys_are_ignored(self):
        document = default_spec_document()
        assert any(key.startswith("//") for key in document)
        spec = ExperimentSpec.from_dict(document)
        assert spec == ExperimentSpec()

    def test_round_trip_run_is_byte_identical(self, tmp_path):
        spec = small_spec()
        copy = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        first = run_experiment(spec).database
        second = run_experiment(copy).database
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        first.to_json(a)
        second.to_json(b)
        assert a.read_bytes() == b.read_bytes()


class TestSpecValidation:
    def test_unknown_workload_names_the_key(self):
        with pytest.raises(SpecError, match="workload.name.*nosuch"):
            small_spec(workload=ComponentRef("nosuch")).validate()

    def test_unknown_strategy_names_the_key(self):
        with pytest.raises(SpecError, match="strategy.name.*warp"):
            small_spec(strategy=ComponentRef("warp")).validate()

    def test_unknown_workload_param_names_the_key(self):
        with pytest.raises(SpecError, match="workload.params"):
            small_spec(
                workload=ComponentRef("uniform", {"operatoins": 3})
            ).validate()

    def test_bad_params_type_names_the_key(self):
        with pytest.raises(SpecError, match="strategy.params"):
            ExperimentSpec.from_dict(
                {"spec_version": 1, "strategy": {"name": "random", "params": [1, 2]}}
            )

    def test_missing_spec_version(self):
        with pytest.raises(SpecError, match="spec_version"):
            ExperimentSpec.from_dict({"workload": "uniform"})

    def test_wrong_spec_version(self):
        with pytest.raises(SpecError, match="spec_version"):
            ExperimentSpec.from_dict({"spec_version": 99})

    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError, match="unknown key 'workloads'"):
            ExperimentSpec.from_dict({"spec_version": 1, "workloads": "uniform"})

    def test_unknown_component_key(self):
        with pytest.raises(SpecError, match="workload.*flavour"):
            ExperimentSpec.from_dict(
                {"spec_version": 1, "workload": {"name": "uniform", "flavour": "hot"}}
            )

    def test_unknown_metric(self):
        with pytest.raises(SpecError, match="metrics.*latency"):
            small_spec(metrics=("accesses", "latency")).validate()

    def test_shard_requires_exhaustive(self):
        with pytest.raises(SpecError, match="shard"):
            small_spec(
                shard="1/2", strategy=ComponentRef("random")
            ).validate()

    def test_prune_rejected_for_exhaustive(self):
        with pytest.raises(SpecError, match="prune"):
            small_spec(prune=True).validate()

    def test_prune_fraction_range(self):
        with pytest.raises(SpecError, match="prune_fraction"):
            small_spec(prune_fraction=1.5).validate()

    def test_unknown_store_kind(self):
        with pytest.raises(SpecError, match="store.name"):
            small_spec(store=ComponentRef("sqlite")).validate()

    def test_unknown_energy_param(self):
        with pytest.raises(SpecError, match="energy.params"):
            small_spec(
                energy=ComponentRef("default", {"cpu_overhead": 1})
            ).validate()

    def test_default_spec_is_valid(self):
        ExperimentSpec().validate()


class TestSpecHash:
    def test_hash_is_execution_independent(self):
        base = small_spec()
        assert base.spec_hash() == small_spec(shard="1/3").spec_hash()
        assert (
            base.spec_hash()
            == small_spec(backend=ComponentRef("process", {"jobs": 4})).spec_hash()
        )
        assert (
            base.spec_hash()
            == small_spec(store=ComponentRef("jsonl", {"path": "x.jsonl"})).spec_hash()
        )
        assert base.spec_hash() == small_spec(sink=ComponentRef("pareto")).spec_hash()

    def test_hash_normalises_registry_defaults_into_params(self):
        """Equivalent descriptions hash equally: stating a default = omitting it."""
        assert (
            small_spec(strategy=ComponentRef("random")).spec_hash()
            == small_spec(
                strategy=ComponentRef("random", {"budget": DEFAULT_SEARCH_BUDGET})
            ).spec_hash()
        )
        bare = ExperimentSpec(workload=ComponentRef("uniform"), seed=1)
        explicit = ExperimentSpec(
            workload=ComponentRef("uniform", {"operations": 3000}), seed=1
        )
        assert bare.spec_hash() == explicit.spec_hash()
        # ... but a non-default value is a different experiment.
        assert (
            bare.spec_hash()
            != ExperimentSpec(
                workload=ComponentRef("uniform", {"operations": 42}), seed=1
            ).spec_hash()
        )

    def test_hash_tracks_what_the_experiment_produces(self):
        base = small_spec()
        assert base.spec_hash() != small_spec(seed=2).spec_hash()
        assert (
            base.spec_hash()
            != small_spec(strategy=ComponentRef("random", {"budget": 8})).spec_hash()
        )
        assert base.spec_hash() != small_spec(space=ComponentRef("compact")).spec_hash()

    def test_hash_lands_in_provenance_and_store_entries(self, tmp_path):
        store_path = tmp_path / "cache.jsonl"
        spec = small_spec(store=ComponentRef("jsonl", {"path": str(store_path)}))
        result = run_experiment(spec)
        assert result.provenance.spec_hash == spec.spec_hash()
        entries = [
            json.loads(line)
            for line in store_path.read_text().splitlines()
            if line.strip()
        ]
        assert entries
        assert all(entry["spec_hash"] == spec.spec_hash() for entry in entries)

    def test_shards_share_the_merged_runs_hash(self, tmp_path):
        from repro.core.store import merge_databases

        shards = [
            run_experiment(small_spec(shard=f"{k}/2")).database for k in (1, 2)
        ]
        merged = merge_databases(shards)
        full = run_experiment(small_spec()).database
        a, b = tmp_path / "merged.json", tmp_path / "full.json"
        merged.to_json(a)
        full.to_json(b)
        assert a.read_bytes() == b.read_bytes()

    def test_hashless_legacy_shards_merge_with_spec_shards(self):
        """An empty spec hash is 'unknown experiment', not a distinct one."""
        from repro.core.exploration import ExplorationEngine, ExplorationSettings, ShardSpec
        from repro.core.space import smoke_parameter_space
        from repro.core.store import merge_databases
        from repro.workloads.synthetic import UniformRandomWorkload

        trace = UniformRandomWorkload(operations=300).generate(seed=1)
        legacy = ExplorationEngine(
            smoke_parameter_space(),
            trace,
            settings=ExplorationSettings(shard=ShardSpec(1, 2)),
        ).explore()
        assert legacy.provenance.spec_hash == ""
        modern = run_experiment(small_spec(shard="2/2")).database
        merged = merge_databases([legacy, modern])
        assert len(merged) == smoke_parameter_space().size()
        assert merged.provenance.spec_hash == small_spec().spec_hash()

    def test_distinct_experiments_never_merge(self):
        """Two different non-empty spec hashes are rejected, even when the
        evaluation fingerprints match (e.g. only the metric selection
        differs)."""
        from repro.core.store import MergeError, merge_databases

        first = run_experiment(small_spec(shard="1/2")).database
        second = run_experiment(
            small_spec(shard="2/2", metrics=("accesses", "footprint"))
        ).database
        with pytest.raises(MergeError, match="spec"):
            merge_databases([first, second])


class TestOverrides:
    def test_dotted_overrides(self):
        data = ExperimentSpec().to_dict()
        apply_overrides(
            data,
            [
                "workload.name=uniform",
                "workload.params.operations=300",
                "strategy.name=random",
                "strategy.params.budget=8",
                "seed=1",
            ],
        )
        spec = ExperimentSpec.from_dict(data)
        assert spec.workload == ComponentRef("uniform", {"operations": 300})
        assert spec.strategy == ComponentRef("random", {"budget": 8})
        assert spec.seed == 1

    def test_override_values_parse_as_json_else_string(self):
        data = ExperimentSpec().to_dict()
        apply_overrides(data, ["shard=1/2", "prune=true", "sample=5"])
        spec = ExperimentSpec.from_dict(data)
        assert spec.shard == "1/2"  # not JSON -> kept as string
        assert spec.prune is True
        assert spec.sample == 5

    def test_malformed_override_rejected(self):
        with pytest.raises(SpecError, match="key.path=value"):
            apply_overrides({}, ["no-equals-sign"])


class TestExperimentRunner:
    def test_matches_direct_engine_construction(self, tmp_path):
        from repro.core.exploration import ExplorationEngine
        from repro.core.space import smoke_parameter_space
        from repro.workloads.synthetic import UniformRandomWorkload

        result = run_experiment(small_spec())
        trace = UniformRandomWorkload(operations=300).generate(seed=1)
        engine = ExplorationEngine(smoke_parameter_space(), trace)
        engine.spec_hash = small_spec().spec_hash()
        direct = engine.explore()
        a, b = tmp_path / "api.json", tmp_path / "direct.json"
        result.database.to_json(a)
        direct.to_json(b)
        assert a.read_bytes() == b.read_bytes()

    def test_run_result_bundles_counters_and_provenance(self):
        result = run_experiment(small_spec())
        assert result.provenance is not None
        assert result.provenance.fingerprint
        assert set(result.counters) >= {"cache_hits", "cache_misses", "store_hits"}
        assert result.pareto_records()
        assert "Pareto" in result.report()

    def test_sink_is_resolved_and_fed(self):
        result = run_experiment(small_spec(sink=ComponentRef("pareto")))
        assert result.sink is not None
        assert result.sink.seen == len(result.database)
        assert result.sink.records()

    def test_invalid_spec_rejected_at_construction(self):
        with pytest.raises(SpecError):
            Experiment(small_spec(workload=ComponentRef("nosuch")))

    def test_experiment_is_rerunnable(self, tmp_path):
        experiment_spec = small_spec()
        first = Experiment(experiment_spec).run().database
        second = Experiment(experiment_spec).run().database
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        first.to_json(a)
        second.to_json(b)
        assert a.read_bytes() == b.read_bytes()


class FirstPointsSearch(SearchStrategy):
    """Toy third-party strategy: evaluate the first ``budget`` points."""

    name = "firstpoints"

    def _search(self, database):
        points = [
            self.engine.space.point_at(i)
            for i in range(min(self.budget.evaluations, self.engine.space.size()))
        ]
        self._evaluate_batch(points, database)


@pytest.fixture
def registered_strategy():
    from repro.api.registry import search_strategy_factory

    registry.strategies.register(
        "firstpoints",
        search_strategy_factory(FirstPointsSearch),
        description="first N points of the enumeration (test strategy)",
    )
    yield "firstpoints"
    registry.strategies.unregister("firstpoints")


class TestThirdPartyRegistration:
    def test_usable_from_python_api(self, registered_strategy):
        spec = small_spec(strategy=ComponentRef("firstpoints", {"budget": 4}))
        result = run_experiment(spec)
        assert len(result.database) == 4
        assert result.database[0].configuration.label.startswith("firstpoints")

    def test_usable_from_cli_without_touching_cli_py(
        self, registered_strategy, tmp_path, capsys
    ):
        out = tmp_path / "fp.json"
        code = main(
            [
                "explore",
                "--workload",
                "uniform",
                "--space",
                "smoke",
                "--seed",
                "1",
                "--strategy",
                "firstpoints",
                "--budget",
                "4",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert len(json.loads(out.read_text())["records"]) == 4

    def test_usable_from_cli_run_spec_file(self, registered_strategy, tmp_path):
        spec_path = tmp_path / "exp.json"
        small_spec(strategy=ComponentRef("firstpoints", {"budget": 3})).to_json(
            spec_path
        )
        out = tmp_path / "fp.json"
        assert main(["run", str(spec_path), "--out", str(out)]) == 0
        assert len(json.loads(out.read_text())["records"]) == 3

    def test_listed_by_dmexplore_list(self, registered_strategy, capsys):
        assert main(["list", "strategies"]) == 0
        assert "firstpoints" in capsys.readouterr().out

    def test_duplicate_registration_rejected(self, registered_strategy):
        from repro.api.registry import RegistryError

        with pytest.raises(RegistryError, match="already registered"):
            registry.strategies.register("firstpoints", lambda: None)


class TestCliDefaultsDerived:
    """The spec is the single source of defaults; argparse restates nothing."""

    def test_explore_defaults_come_from_the_spec(self):
        parser = build_parser()
        args = parser.parse_args(["explore"])
        spec = ExperimentSpec()
        assert args.workload == spec.workload.name
        assert args.space == spec.space.name
        assert args.hierarchy == spec.hierarchy.name
        assert args.seed == spec.seed
        assert args.metrics == spec.metrics
        assert args.sample == spec.sample
        assert args.strategy == spec.strategy.name
        assert args.budget == DEFAULT_SEARCH_BUDGET
        assert args.prune == spec.prune
        assert args.prune_fraction == spec.prune_fraction
        assert args.shard == (spec.shard or None)

    def test_report_defaults_come_from_the_spec(self):
        parser = build_parser()
        args = parser.parse_args(["report", "x.json"])
        spec = ExperimentSpec()
        assert args.workload == spec.workload.name
        assert args.space == spec.space.name
        assert args.hierarchy == spec.hierarchy.name
        assert args.seed == spec.seed

    def test_core_defaults_are_the_specs_defaults(self):
        """The chain core -> spec -> CLI has one definition per default."""
        from repro.core.search import SearchBudget

        spec = ExperimentSpec()
        assert spec.prune_fraction == DEFAULT_PRUNE_FRACTION
        assert SearchBudget().evaluations == DEFAULT_SEARCH_BUDGET

    def test_parser_choices_read_the_registries(self):
        parser = build_parser()
        explore = next(
            action
            for action in parser._subparsers._group_actions[0].choices[
                "explore"
            ]._actions
            if action.dest == "workload"
        )
        assert list(explore.choices) == registry.workloads.names()
