"""Unit tests for the general-purpose baseline allocators."""

import pytest

from repro.allocator.baselines import (
    BASELINE_BUILDERS,
    baseline_names,
    dlmalloc_allocator,
    kingsley_allocator,
    make_baseline,
    simple_freelist_allocator,
)
from repro.memhier.hierarchy import flat_main_memory
from repro.memhier.mapping import PoolMapping
from repro.profiling.profiler import profile_trace
from repro.workloads.easyport import EasyportWorkload


def run_baseline(builder, trace):
    allocator = builder()
    hierarchy = flat_main_memory()
    mapping = PoolMapping(hierarchy)
    for pool in allocator.pools:
        mapping.place_pool(pool.name, hierarchy.background_module.name)
    return profile_trace(allocator, trace, mapping, configuration_id=allocator.name)


@pytest.fixture(scope="module")
def trace():
    return EasyportWorkload(packets=300).generate(seed=8)


class TestBaselineRegistry:
    def test_names_and_builders_match(self):
        assert set(baseline_names()) == set(BASELINE_BUILDERS)

    def test_make_baseline(self):
        for name in baseline_names():
            allocator = make_baseline(name)
            assert allocator.pools

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ValueError):
            make_baseline("tcmalloc")


class TestBaselineBehaviour:
    @pytest.mark.parametrize(
        "builder", [kingsley_allocator, dlmalloc_allocator, simple_freelist_allocator]
    )
    def test_serves_full_trace_without_leaks(self, builder, trace):
        result = run_baseline(builder, trace)
        assert result.leaked_blocks == 0
        assert result.per_pool["__profile__"]["oom_failures"] == 0
        assert result.totals.accesses > 0

    def test_kingsley_faster_but_fatter_than_dlmalloc(self, trace):
        kingsley = run_baseline(kingsley_allocator, trace)
        dlmalloc = run_baseline(dlmalloc_allocator, trace)
        # The classic trade-off: segregated power-of-two lists do far fewer
        # metadata accesses, best-fit-with-coalescing keeps footprint lower.
        assert kingsley.totals.accesses < dlmalloc.totals.accesses
        assert dlmalloc.totals.footprint <= kingsley.totals.footprint * 1.5

    def test_simple_freelist_has_worst_footprint_or_accesses(self, trace):
        simple = run_baseline(simple_freelist_allocator, trace)
        kingsley = run_baseline(kingsley_allocator, trace)
        dlmalloc = run_baseline(dlmalloc_allocator, trace)
        assert (
            simple.totals.footprint >= dlmalloc.totals.footprint
            or simple.totals.accesses >= kingsley.totals.accesses
        )

    def test_kingsley_rounds_to_power_of_two_classes(self):
        allocator = kingsley_allocator()
        address = allocator.malloc(70)
        pool = allocator.owner_of(address)
        block = pool._live[address]
        # 70 bytes land in the 65..128 class.
        assert block.requested_size == 70
        assert block.size >= 128
