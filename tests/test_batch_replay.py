"""Byte-identity of the batch replay engine against both replay oracles.

The batch kernel (:class:`repro.profiling.batch.BatchReplayEngine`) scores
many configurations off shared pool-group simulations; its contract is that
every :class:`~repro.profiling.metrics.ProfileResult` is *exactly* what the
single fast replay — and through ``tests/test_fast_replay.py``'s own
contract, the legacy event loop — would have produced.  This file holds the
kernel to that across every standard space and workload, through the
exploration engine and both backends, for the mid-trace OOM fallback, and
for the shared-memory trace shipping of the process pool.
"""

import json

import pytest

from repro.core.configuration import configuration_from_point
from repro.core.exploration import (
    _PREFIX_TRACE_LIMIT,
    ExplorationEngine,
    ExplorationSettings,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.core.factory import AllocatorFactory
from repro.core.space import STANDARD_SPACES
from repro.core.store import ResultStore
from repro.memhier.hierarchy import embedded_two_level
from repro.profiling.batch import BatchReplayEngine
from repro.profiling.profiler import Profiler, ProfilerOptions
from repro.workloads.easyport import EasyportWorkload
from repro.workloads.synthetic import PhasedWorkload, UniformRandomWorkload
from repro.workloads.vtc import VTCWorkload

#: Points sampled per parameter space for the cross-space sweep.
POINTS_PER_SPACE = 4

WORKLOADS = {
    "easyport": lambda: EasyportWorkload(packets=120).generate(seed=7),
    "vtc": lambda: VTCWorkload(image_width=24, image_height=24).generate(seed=7),
    "uniform": lambda: UniformRandomWorkload(operations=400).generate(seed=7),
    "phased": lambda: PhasedWorkload().generate(seed=7),
}


@pytest.fixture(scope="module", params=sorted(WORKLOADS))
def workload_trace(request):
    return request.param, WORKLOADS[request.param]()


def result_bytes(result):
    return json.dumps(result.as_dict(), sort_keys=True, default=repr).encode()


def single_replay(trace, configuration, hierarchy, fast=True):
    factory = AllocatorFactory(hierarchy)
    built = factory.build(configuration)
    profiler = Profiler(built.mapping, options=ProfilerOptions(fast_replay=fast))
    return profiler.run(built.allocator, trace, configuration.configuration_id)


def configuration_of(trace, point, hierarchy, label=""):
    return configuration_from_point(
        point,
        hot_sizes=trace.hot_sizes(top=8),
        scratchpad_module=hierarchy.fastest.name,
        main_module=hierarchy.background_module.name,
        label=label,
    )


class TestKernelIdentityAcrossSpaces:
    """BatchReplayEngine vs the single fast replay, every space × workload."""

    @pytest.mark.parametrize("space_name", sorted(STANDARD_SPACES))
    def test_batch_matches_fast_replay(self, space_name, workload_trace):
        _name, trace = workload_trace
        hierarchy = embedded_two_level()
        engine = BatchReplayEngine(trace, AllocatorFactory(hierarchy))
        space = STANDARD_SPACES[space_name]()
        for index, point in enumerate(space.sample(POINTS_PER_SPACE, seed=11)):
            configuration = configuration_of(trace, point, hierarchy, f"p{index}")
            batch = engine.run_configuration(configuration)
            fast = single_replay(trace, configuration, hierarchy)
            assert result_bytes(batch) == result_bytes(fast)
        assert engine.batched_configurations > 0

    def test_batch_matches_legacy_loop(self, workload_trace):
        """The legacy event loop is the executable specification."""
        _name, trace = workload_trace
        hierarchy = embedded_two_level()
        engine = BatchReplayEngine(trace, AllocatorFactory(hierarchy))
        space = STANDARD_SPACES["smoke"]()
        for index, point in enumerate(space.points()):
            configuration = configuration_of(trace, point, hierarchy, f"s{index}")
            batch = engine.run_configuration(configuration)
            legacy = single_replay(trace, configuration, hierarchy, fast=False)
            assert result_bytes(batch) == result_bytes(legacy)


class TestKernelIdentityAcrossPolicies:
    """Every general-pool policy combination through the flat kernel."""

    def test_all_policy_combinations(self):
        trace = UniformRandomWorkload(operations=400).generate(seed=3)
        hierarchy = embedded_two_level()
        engine = BatchReplayEngine(trace, AllocatorFactory(hierarchy))
        from repro.allocator.coalescing import COALESCING_POLICIES
        from repro.allocator.fit import FIT_POLICIES
        from repro.allocator.freelist import FREE_LIST_POLICIES
        from repro.allocator.splitting import SPLITTING_POLICIES

        count = 0
        for free_list in sorted(FREE_LIST_POLICIES):
            for fit in sorted(FIT_POLICIES):
                for coalescing in sorted(COALESCING_POLICIES):
                    for splitting in sorted(SPLITTING_POLICIES):
                        point = {
                            "num_dedicated_pools": 0,
                            "general_free_list": free_list,
                            "general_fit": fit,
                            "general_coalescing": coalescing,
                            "general_splitting": splitting,
                            "chunk_size": 2048,
                        }
                        configuration = configuration_of(
                            trace, point, hierarchy, f"c{count}"
                        )
                        batch = engine.run_configuration(configuration)
                        fast = single_replay(trace, configuration, hierarchy)
                        assert result_bytes(batch) == result_bytes(fast), point
                        count += 1
        assert engine.fallback_configurations == 0


class TestOOMFallback:
    """Dedicated-pool capacity divergence mid-trace → per-config fallback."""

    def test_diverged_groups_fall_back_identically(self):
        trace = EasyportWorkload(packets=400).generate(seed=7)
        # Scratchpad small enough that dedicated pools overflow mid-trace
        # and spill to the general pool — inexpressible for the stream
        # partition, so those configurations must take the single-replay
        # path and still match both oracles.
        hierarchy = embedded_two_level(scratchpad_size=2048, main_size=16384)
        engine = BatchReplayEngine(trace, AllocatorFactory(hierarchy))
        space = STANDARD_SPACES["default"]()
        for index, point in enumerate(space.sample(6, seed=2)):
            configuration = configuration_of(trace, point, hierarchy, f"o{index}")
            batch = engine.run_configuration(configuration)
            fast = single_replay(trace, configuration, hierarchy)
            legacy = single_replay(trace, configuration, hierarchy, fast=False)
            assert result_bytes(batch) == result_bytes(fast)
            assert result_bytes(batch) == result_bytes(legacy)
        assert engine.fallback_configurations > 0, (
            "OOM divergence never triggered; shrink the hierarchy"
        )


class TestEngineLevelIdentity:
    """batch_replay on vs off through ExplorationEngine: same database."""

    def database_rows(self, database):
        return [
            (
                record.configuration.label,
                record.configuration.configuration_id,
                record.metrics.as_dict(),
                record.oom_failures,
            )
            for record in database.records
        ]

    def explore_with(self, trace, batch_replay, store=None, backend=None):
        engine = ExplorationEngine(
            STANDARD_SPACES["smoke"](),
            trace,
            settings=ExplorationSettings(batch_replay=batch_replay),
            store=store,
            backend=backend,
        )
        try:
            return self.database_rows(engine.explore())
        finally:
            engine.close()

    def test_database_identical(self, workload_trace):
        _name, trace = workload_trace
        assert self.explore_with(trace, True) == self.explore_with(trace, False)

    def test_store_entries_identical(self, workload_trace, tmp_path):
        _name, trace = workload_trace
        self.explore_with(trace, True, store=ResultStore(tmp_path / "batch.jsonl"))
        self.explore_with(trace, False, store=ResultStore(tmp_path / "point.jsonl"))

        def entries(path):
            return sorted(
                json.dumps({k: v for k, v in json.loads(line).items() if k != "at"},
                           sort_keys=True)
                for line in path.read_text().splitlines()
            )

        assert entries(tmp_path / "batch.jsonl") == entries(tmp_path / "point.jsonl")


class TestProcessPoolBatchDispatch:
    """Sub-batch dispatch, shared-memory trace shipping, serial threshold."""

    def test_pool_matches_serial(self):
        trace = EasyportWorkload(packets=150).generate(seed=5)
        space = STANDARD_SPACES["smoke"]()
        serial = ExplorationEngine(space, trace, backend=SerialBackend())
        backend = ProcessPoolBackend(jobs=2, serial_threshold=0)
        pooled = ExplorationEngine(space, trace, backend=backend)
        try:
            items = [(point, f"cfg{i:05d}") for i, point in enumerate(space.points())]
            want = serial.evaluate_points(items)
            got = pooled.evaluate_points(items)
            assert backend._pool is not None, "pool was never created"
            assert [result_record(r) for r in got] == [result_record(r) for r in want]
        finally:
            serial.close()
            pooled.close()

    def test_shared_memory_trace_shipping(self, monkeypatch):
        import repro.core.exploration as exploration

        # Force the shared-memory path whatever the trace size.
        monkeypatch.setattr(exploration, "_SHM_MIN_BYTES", 0)
        trace = EasyportWorkload(packets=150).generate(seed=5)
        space = STANDARD_SPACES["smoke"]()
        backend = ProcessPoolBackend(jobs=2, serial_threshold=0)
        engine = ExplorationEngine(space, trace, backend=backend)
        serial = ExplorationEngine(space, trace, backend=SerialBackend())
        try:
            items = [(point, f"cfg{i:05d}") for i, point in enumerate(space.points())]
            got = engine.evaluate_points(items)
            assert backend._trace_shm is not None, "trace was not staged in shm"
            want = serial.evaluate_points(items)
            assert [result_record(r) for r in got] == [result_record(r) for r in want]
        finally:
            engine.close()
            serial.close()
        # close() must unlink the parent-owned segment.
        assert backend._trace_shm is None

    def test_small_batches_never_touch_the_pool(self):
        trace = EasyportWorkload(packets=150).generate(seed=5)
        space = STANDARD_SPACES["smoke"]()
        backend = ProcessPoolBackend(jobs=2)  # serial_threshold defaults to 8
        engine = ExplorationEngine(space, trace, backend=backend)
        serial = ExplorationEngine(space, trace, backend=SerialBackend())
        try:
            items = [(point, f"cfg{i:05d}") for i, point in enumerate(space.points())]
            assert len(items) <= backend.serial_threshold
            got = engine.evaluate_points(items)
            want = serial.evaluate_points(items)
            assert backend._pool is None, "small batch spun up worker processes"
            assert [result_record(r) for r in got] == [result_record(r) for r in want]
        finally:
            engine.close()
            serial.close()

    def test_serial_threshold_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(jobs=2, serial_threshold=-1)


def result_record(record):
    return (
        record.configuration.label,
        record.configuration.configuration_id,
        record.metrics.as_dict(),
        record.oom_failures,
    )


class TestPrefixTraceCacheBound:
    def test_predict_point_cache_is_bounded(self):
        trace = EasyportWorkload(packets=200).generate(seed=5)
        engine = ExplorationEngine(STANDARD_SPACES["smoke"](), trace)
        point = next(iter(STANDARD_SPACES["smoke"]().points()))
        for step in range(1, 2 * _PREFIX_TRACE_LIMIT + 1):
            engine.predict_point(point, fraction=step / (2 * _PREFIX_TRACE_LIMIT))
        assert len(engine._prefix_traces) <= _PREFIX_TRACE_LIMIT

    def test_predict_point_reuses_recent_prefixes(self):
        trace = EasyportWorkload(packets=200).generate(seed=5)
        engine = ExplorationEngine(STANDARD_SPACES["smoke"](), trace)
        point = next(iter(STANDARD_SPACES["smoke"]().points()))
        engine.predict_point(point, fraction=0.25)
        cached = dict(engine._prefix_traces)
        engine.predict_point(point, fraction=0.25)
        assert dict(engine._prefix_traces) == cached  # same objects, no rebuild
