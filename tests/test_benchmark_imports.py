"""Regression guard: the benchmark suite must stay collectable.

The seed shipped ``benchmarks/`` without an ``__init__.py`` while its
modules used ``from .common import ...``; pytest then died at collection
time with "attempted relative import with no known parent package",
taking the whole tier-1 run down with it.  These tests import every
benchmark module the same way pytest does (as ``benchmarks.<module>``),
so a future packaging regression fails here with a readable message
instead of as a collection error.
"""

import importlib
import pkgutil
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

MODULE_NAMES = sorted(
    info.name for info in pkgutil.iter_modules([str(BENCHMARKS_DIR)])
)


def test_benchmarks_is_a_package():
    assert (BENCHMARKS_DIR / "__init__.py").exists(), (
        "benchmarks/__init__.py is missing: pytest will fail to collect the "
        "benchmark modules because they use relative imports"
    )


def test_benchmark_modules_discovered():
    assert "common" in MODULE_NAMES
    assert any(name.startswith("test_") for name in MODULE_NAMES)


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_benchmark_module_imports(module_name):
    module = importlib.import_module(f"benchmarks.{module_name}")
    assert module.__name__ == f"benchmarks.{module_name}"
