"""Unit tests for the block model (repro.allocator.blocks)."""

import pytest

from repro.allocator.blocks import (
    BOUNDARY_TAG_BYTES,
    HEADER_BYTES,
    Block,
    BlockRange,
    BlockStatus,
    SizeClass,
    align_up,
    block_overhead,
    gross_block_size,
    power_of_two_size_classes,
)


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(16, 4) == 16

    def test_rounds_up(self):
        assert align_up(13, 4) == 16

    def test_zero_size(self):
        assert align_up(0, 8) == 0

    def test_alignment_one(self):
        assert align_up(13, 1) == 13

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            align_up(-1, 4)

    def test_non_positive_alignment_rejected(self):
        with pytest.raises(ValueError):
            align_up(8, 0)


class TestOverheadAndGrossSize:
    def test_block_overhead_without_tag(self):
        assert block_overhead() == HEADER_BYTES

    def test_block_overhead_with_tag(self):
        assert block_overhead(with_boundary_tag=True) == HEADER_BYTES + BOUNDARY_TAG_BYTES

    def test_gross_size_includes_alignment_and_header(self):
        assert gross_block_size(13, 4) == 16 + HEADER_BYTES

    def test_gross_size_exact_payload(self):
        assert gross_block_size(64, 4) == 64 + HEADER_BYTES


class TestBlock:
    def test_new_block_is_free(self):
        block = Block(address=0, size=64)
        assert block.is_free
        assert not block.is_allocated

    def test_end_address(self):
        block = Block(address=100, size=50)
        assert block.end == 150

    def test_mark_allocated_and_free(self):
        block = Block(address=0, size=64)
        block.mark_allocated(40)
        assert block.is_allocated
        assert block.requested_size == 40
        block.mark_free()
        assert block.is_free
        assert block.requested_size == 0

    def test_double_allocate_rejected(self):
        block = Block(address=0, size=64)
        block.mark_allocated(10)
        with pytest.raises(ValueError):
            block.mark_allocated(10)

    def test_double_free_rejected(self):
        block = Block(address=0, size=64)
        with pytest.raises(ValueError):
            block.mark_free()

    def test_internal_fragmentation(self):
        block = Block(address=0, size=64)
        block.mark_allocated(40)
        assert block.internal_fragmentation == 24

    def test_internal_fragmentation_zero_when_free(self):
        block = Block(address=0, size=64)
        assert block.internal_fragmentation == 0

    def test_adjacency(self):
        first = Block(address=0, size=32)
        second = Block(address=32, size=32)
        third = Block(address=100, size=32)
        assert first.adjacent_to(second)
        assert second.adjacent_to(first)
        assert not first.adjacent_to(third)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Block(address=-1, size=10)
        with pytest.raises(ValueError):
            Block(address=0, size=0)


class TestBlockRange:
    def test_size_and_contains(self):
        block_range = BlockRange(10, 20)
        assert block_range.size == 10
        assert block_range.contains(10)
        assert block_range.contains(19)
        assert not block_range.contains(20)

    def test_overlap(self):
        assert BlockRange(0, 10).overlaps(BlockRange(5, 15))
        assert not BlockRange(0, 10).overlaps(BlockRange(10, 20))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            BlockRange(10, 5)


class TestSizeClass:
    def test_matches_inclusive_bounds(self):
        size_class = SizeClass(16, 32)
        assert size_class.matches(16)
        assert size_class.matches(32)
        assert not size_class.matches(15)
        assert not size_class.matches(33)

    def test_exact_class(self):
        size_class = SizeClass(74, 74)
        assert size_class.is_exact
        assert size_class.matches(74)

    def test_default_label(self):
        assert SizeClass(1, 8).label == "1-8B"

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            SizeClass(10, 5)


class TestPowerOfTwoClasses:
    def test_classes_cover_contiguously(self):
        classes = power_of_two_size_classes(3, 8)
        assert classes[0].min_size == 1
        for previous, current in zip(classes, classes[1:]):
            assert current.min_size == previous.max_size + 1

    def test_every_size_in_range_is_covered_once(self):
        classes = power_of_two_size_classes(3, 10)
        for size in range(1, 1025):
            matching = [cls for cls in classes if cls.matches(size)]
            assert len(matching) == 1, f"size {size} covered by {len(matching)} classes"

    def test_invalid_exponents(self):
        with pytest.raises(ValueError):
            power_of_two_size_classes(5, 3)
