"""Unit tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.api import ExperimentSpec, registry
from repro.cli import build_parser, main
from repro.core.results import ResultDatabase


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explore_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.workload == "easyport"
        assert args.space == "compact"

    def test_registries_complete(self):
        assert {"easyport", "vtc", "uniform", "bursty"} <= set(registry.workloads)
        assert {"default", "compact", "smoke", "easyport", "vtc"} <= set(
            registry.spaces
        )
        assert {"2level", "3level"} <= set(registry.hierarchies)
        assert {"exhaustive", "random", "hillclimb", "evolutionary"} <= set(
            registry.strategies
        )


class TestCommands:
    def test_trace_command(self, tmp_path, capsys):
        out = tmp_path / "trace.txt"
        code = main(["trace", "--workload", "uniform", "--seed", "1", "--out", str(out)])
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "allocations" in captured

    def test_explore_pareto_report_pipeline(self, tmp_path, capsys):
        database_path = tmp_path / "results.json"
        code = main(
            [
                "explore",
                "--workload",
                "uniform",
                "--space",
                "smoke",
                "--seed",
                "1",
                "--out",
                str(database_path),
            ]
        )
        assert code == 0
        assert database_path.exists()
        payload = json.loads(database_path.read_text())
        assert payload["records"]

        code = main(["pareto", str(database_path)])
        assert code == 0
        assert "Pareto-optimal" in capsys.readouterr().out

        export_dir = tmp_path / "artifacts"
        code = main(["report", str(database_path), "--export-dir", str(export_dir)])
        assert code == 0
        output = capsys.readouterr().out
        assert "exported artefacts" in output
        assert (export_dir / "exploration_all.csv").exists()

    def test_explore_with_sampling(self, tmp_path):
        database_path = tmp_path / "sampled.json"
        code = main(
            [
                "explore",
                "--workload",
                "uniform",
                "--space",
                "compact",
                "--sample",
                "4",
                "--out",
                str(database_path),
            ]
        )
        assert code == 0
        database = ResultDatabase.from_json(database_path)
        assert len(database) == 4


class TestSpecCommand:
    def test_emits_a_runnable_commented_document(self, tmp_path, capsys):
        path = tmp_path / "exp.json"
        assert main(["spec", "--out", str(path)]) == 0
        document = json.loads(path.read_text())
        assert any(key.startswith("//") for key in document)
        assert ExperimentSpec.from_dict(document) == ExperimentSpec()

    def test_prints_to_stdout_without_out(self, capsys):
        assert main(["spec"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["spec_version"] == ExperimentSpec().spec_version


class TestRunCommand:
    def spec_file(self, tmp_path, **overrides):
        spec = ExperimentSpec.from_dict(
            {
                "spec_version": 1,
                "workload": {"name": "uniform", "params": {"operations": 300}},
                "space": "smoke",
                "seed": 1,
                **overrides,
            }
        )
        path = tmp_path / "exp.json"
        spec.to_json(path)
        return path

    def test_run_executes_a_spec_file(self, tmp_path, capsys):
        spec_path = self.spec_file(tmp_path)
        run_out = tmp_path / "run.json"
        assert main(["run", str(spec_path), "--out", str(run_out)]) == 0
        payload = json.loads(run_out.read_text())
        assert payload["records"]
        assert payload["provenance"]["spec_hash"]
        assert "Pareto" in capsys.readouterr().out

    def test_run_with_overrides_matches_explore(self, tmp_path, capsys):
        spec_path = tmp_path / "exp.json"
        assert main(["spec", "--out", str(spec_path)]) == 0
        run_out = tmp_path / "run.json"
        assert (
            main(
                [
                    "run",
                    str(spec_path),
                    "--set",
                    "workload.name=uniform",
                    "--set",
                    "space.name=smoke",
                    "--set",
                    "seed=1",
                    "--out",
                    str(run_out),
                ]
            )
            == 0
        )
        legacy_out = tmp_path / "legacy.json"
        assert (
            main(
                [
                    "explore",
                    "--workload",
                    "uniform",
                    "--space",
                    "smoke",
                    "--seed",
                    "1",
                    "--out",
                    str(legacy_out),
                ]
            )
            == 0
        )
        assert run_out.read_bytes() == legacy_out.read_bytes()

    def test_run_heuristic_with_store_matches_explore(self, tmp_path, capsys):
        spec_path = tmp_path / "exp.json"
        assert main(["spec", "--out", str(spec_path)]) == 0
        run_out = tmp_path / "run.json"
        assert (
            main(
                [
                    "run",
                    str(spec_path),
                    "--set",
                    "workload.name=uniform",
                    "--set",
                    "space.name=smoke",
                    "--set",
                    "seed=1",
                    "--set",
                    "strategy.name=random",
                    "--set",
                    "strategy.params.budget=6",
                    "--set",
                    "store.name=jsonl",
                    "--set",
                    f"store.params.path={tmp_path / 'run-store.jsonl'}",
                    "--out",
                    str(run_out),
                ]
            )
            == 0
        )
        legacy_out = tmp_path / "legacy.json"
        assert (
            main(
                [
                    "explore",
                    "--workload",
                    "uniform",
                    "--space",
                    "smoke",
                    "--seed",
                    "1",
                    "--strategy",
                    "random",
                    "--budget",
                    "6",
                    "--store",
                    str(tmp_path / "legacy-store.jsonl"),
                    "--out",
                    str(legacy_out),
                ]
            )
            == 0
        )
        assert run_out.read_bytes() == legacy_out.read_bytes()

    def test_dry_run_prints_resolved_spec_and_runs_nothing(self, tmp_path, capsys):
        spec_path = self.spec_file(tmp_path)
        out = tmp_path / "nothing.json"
        assert (
            main(
                [
                    "run",
                    str(spec_path),
                    "--set",
                    "strategy.name=random",
                    "--dry-run",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        assert not out.exists()
        document = json.loads(capsys.readouterr().out)
        assert document["strategy"]["name"] == "random"
        assert document["workload"]["params"] == {"operations": 300}

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "absent.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_invalid_spec_names_the_key(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"spec_version": 1, "workload": "nosuch"}))
        assert main(["run", str(path)]) == 2
        assert "workload.name" in capsys.readouterr().err

    def test_malformed_json_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["run", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_misspelled_strategy_param_is_a_clean_error(self, tmp_path, capsys):
        spec_path = self.spec_file(tmp_path, strategy={"name": "random"})
        code = main(
            ["run", str(spec_path), "--set", "strategy.params.bugdet=6"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "strategy" in err and "bugdet" in err

    def test_dry_run_rejects_misspelled_strategy_param(self, tmp_path, capsys):
        """Typos are caught at validation — before any work is done."""
        spec_path = self.spec_file(tmp_path, strategy={"name": "random"})
        code = main(
            ["run", str(spec_path), "--set", "strategy.params.bugdet=6", "--dry-run"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "bugdet" in err

    def test_spec_unwritable_out_is_a_clean_error(self, tmp_path, capsys):
        code = main(["spec", "--out", str(tmp_path / "no-such-dir" / "exp.json")])
        assert code == 2
        assert "cannot write" in capsys.readouterr().err

    def test_bad_backend_value_is_a_clean_error(self, tmp_path, capsys):
        spec_path = self.spec_file(tmp_path)
        code = main(
            [
                "run",
                str(spec_path),
                "--set",
                "backend.name=process",
                "--set",
                "backend.params.jobs=-1",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "backend" in err


class TestListCommand:
    def test_lists_one_kind(self, capsys):
        assert main(["list", "workloads"]) == 0
        output = capsys.readouterr().out
        assert "easyport" in output
        assert "packet" in output  # the one-line description

    def test_lists_everything_without_an_argument(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for kind in ("workloads", "spaces", "hierarchies", "strategies",
                     "backends", "sinks"):
            assert f"{kind}:" in output

    def test_rejects_unknown_kind(self, capsys):
        with pytest.raises(SystemExit):
            main(["list", "gadgets"])

    def test_strategies_show_their_params_signature(self, capsys):
        assert main(["list", "strategies"]) == 0
        output = capsys.readouterr().out
        # Every SearchStrategy-backed entry advertises its tunable params
        # with defaults; the budget default comes from the registry entry.
        assert "params: budget=200, population=16, offspring=16" in output
        assert (
            "params: budget=200, initial=16, candidates=128, "
            "surrogate_fraction=0.125, trees=12, depth=6"
        ) in output
        assert "params: budget=200, startup=16, batch=8" in output
        # The exhaustive runner has no budget and must stay signature-free.
        exhaustive_block = output.split("exhaustive", 1)[1].split("hillclimb")[0]
        assert "params:" not in exhaustive_block
