"""Unit tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import HIERARCHIES, SPACES, WORKLOADS, build_parser, main
from repro.core.results import ResultDatabase


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explore_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.workload == "easyport"
        assert args.space == "compact"

    def test_registries_complete(self):
        assert {"easyport", "vtc", "uniform", "bursty"} <= set(WORKLOADS)
        assert {"default", "compact", "smoke"} <= set(SPACES)
        assert {"2level", "3level"} <= set(HIERARCHIES)


class TestCommands:
    def test_trace_command(self, tmp_path, capsys):
        out = tmp_path / "trace.txt"
        code = main(["trace", "--workload", "uniform", "--seed", "1", "--out", str(out)])
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "allocations" in captured

    def test_explore_pareto_report_pipeline(self, tmp_path, capsys):
        database_path = tmp_path / "results.json"
        code = main(
            [
                "explore",
                "--workload",
                "uniform",
                "--space",
                "smoke",
                "--seed",
                "1",
                "--out",
                str(database_path),
            ]
        )
        assert code == 0
        assert database_path.exists()
        payload = json.loads(database_path.read_text())
        assert payload["records"]

        code = main(["pareto", str(database_path)])
        assert code == 0
        assert "Pareto-optimal" in capsys.readouterr().out

        export_dir = tmp_path / "artifacts"
        code = main(["report", str(database_path), "--export-dir", str(export_dir)])
        assert code == 0
        output = capsys.readouterr().out
        assert "exported artefacts" in output
        assert (export_dir / "exploration_all.csv").exists()

    def test_explore_with_sampling(self, tmp_path):
        database_path = tmp_path / "sampled.json"
        code = main(
            [
                "explore",
                "--workload",
                "uniform",
                "--space",
                "compact",
                "--sample",
                "4",
                "--out",
                str(database_path),
            ]
        )
        assert code == 0
        database = ResultDatabase.from_json(database_path)
        assert len(database) == 4
