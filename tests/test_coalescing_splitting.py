"""Unit tests for coalescing and splitting policies."""

import pytest

from repro.allocator.blocks import Block
from repro.allocator.coalescing import (
    COALESCING_POLICIES,
    DeferredCoalesce,
    ImmediateCoalesce,
    NeverCoalesce,
    coalescing_policy_names,
    make_coalescing_policy,
)
from repro.allocator.errors import ConfigurationError
from repro.allocator.freelist import AddressOrderedFreeList, LIFOFreeList
from repro.allocator.splitting import (
    MIN_REMAINDER_BYTES,
    SPLITTING_POLICIES,
    AlwaysSplit,
    NeverSplit,
    ThresholdSplit,
    make_splitting_policy,
    splitting_policy_names,
)


class TestNeverCoalesce:
    def test_block_unchanged(self):
        free_list = LIFOFreeList()
        free_list.push(Block(address=0, size=32))
        block = Block(address=32, size=32)
        result = NeverCoalesce().on_free(block, free_list)
        assert result.block is block
        assert result.merges == 0


class TestImmediateCoalesce:
    def test_merges_with_predecessor_and_successor(self):
        free_list = AddressOrderedFreeList()
        predecessor = Block(address=0, size=32)
        successor = Block(address=64, size=32)
        free_list.push(predecessor)
        free_list.push(successor)
        block = Block(address=32, size=32)
        result = ImmediateCoalesce().on_free(block, free_list)
        assert result.merges == 2
        assert result.block.address == 0
        assert result.block.size == 96
        assert len(free_list) == 0  # both neighbours removed

    def test_merges_only_adjacent(self):
        free_list = AddressOrderedFreeList()
        free_list.push(Block(address=0, size=16))  # gap between 16 and 32
        block = Block(address=32, size=32)
        result = ImmediateCoalesce().on_free(block, free_list)
        assert result.merges == 0
        assert result.block.size == 32

    def test_works_with_unordered_list(self):
        free_list = LIFOFreeList()
        free_list.push(Block(address=64, size=32))
        free_list.push(Block(address=0, size=32))
        block = Block(address=32, size=32)
        result = ImmediateCoalesce().on_free(block, free_list)
        assert result.merges == 2
        assert result.block.size == 96

    def test_respects_merge_predicate(self):
        free_list = AddressOrderedFreeList()
        free_list.push(Block(address=0, size=32))
        block = Block(address=32, size=32)
        # Forbid every merge (as a chunk boundary would).
        result = ImmediateCoalesce().on_free(block, free_list, lambda low, high: False)
        assert result.merges == 0
        assert result.block.size == 32

    def test_charges_reads_for_neighbour_search(self):
        free_list = LIFOFreeList()
        for address in (0, 100, 200):
            free_list.push(Block(address=address, size=32))
        block = Block(address=300, size=32)
        result = ImmediateCoalesce().on_free(block, free_list)
        assert result.reads == 3  # full scan of an unordered list


class TestDeferredCoalesce:
    def test_no_work_before_interval(self):
        policy = DeferredCoalesce(interval=4)
        free_list = AddressOrderedFreeList()
        block = Block(address=0, size=32)
        policy.on_free(block, free_list)
        free_list.push(block)
        assert policy.maintenance(free_list) is None

    def test_merges_runs_at_interval(self):
        policy = DeferredCoalesce(interval=3)
        free_list = AddressOrderedFreeList()
        for address in (0, 32, 64):
            block = Block(address=address, size=32)
            policy.on_free(block, free_list)
            free_list.push(block)
        result = policy.maintenance(free_list)
        assert result is not None
        assert result.merges == 2
        assert len(free_list) == 1
        assert free_list.blocks()[0].size == 96

    def test_maintenance_respects_merge_predicate(self):
        policy = DeferredCoalesce(interval=2)
        free_list = AddressOrderedFreeList()
        for address in (0, 32):
            block = Block(address=address, size=32)
            policy.on_free(block, free_list)
            free_list.push(block)
        result = policy.maintenance(free_list, lambda low, high: False)
        assert result is not None
        assert result.merges == 0
        assert len(free_list) == 2

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            DeferredCoalesce(interval=0)

    def test_reset_clears_counter(self):
        policy = DeferredCoalesce(interval=2)
        free_list = AddressOrderedFreeList()
        block = Block(address=0, size=32)
        policy.on_free(block, free_list)
        free_list.push(block)
        policy.reset()
        other = Block(address=32, size=32)
        policy.on_free(other, free_list)
        free_list.push(other)
        assert policy.maintenance(free_list) is None


class TestCoalescingRegistry:
    def test_all_policies_constructible(self):
        for name in coalescing_policy_names():
            assert make_coalescing_policy(name).policy_name == name

    def test_registry_complete(self):
        assert set(coalescing_policy_names()) == set(COALESCING_POLICIES)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_coalescing_policy("sometimes")

    def test_kwargs_forwarded(self):
        policy = make_coalescing_policy("deferred", interval=7)
        assert policy.interval == 7


class TestNeverSplit:
    def test_never_splits(self):
        block = Block(address=0, size=1024)
        result = NeverSplit().split(block, 64)
        assert not result.did_split
        assert result.allocated.size == 1024


class TestAlwaysSplit:
    def test_splits_when_remainder_large_enough(self):
        block = Block(address=0, size=128)
        result = AlwaysSplit().split(block, 64)
        assert result.did_split
        assert result.allocated.size == 64
        assert result.remainder.address == 64
        assert result.remainder.size == 64

    def test_keeps_small_remainders(self):
        block = Block(address=0, size=64 + MIN_REMAINDER_BYTES - 1)
        result = AlwaysSplit().split(block, 64)
        assert not result.did_split

    def test_remainder_sizes_sum(self):
        block = Block(address=0, size=500)
        result = AlwaysSplit().split(block, 120)
        assert result.allocated.size + result.remainder.size == 500


class TestThresholdSplit:
    def test_splits_above_ratio(self):
        block = Block(address=0, size=300)
        result = ThresholdSplit(ratio=0.5).split(block, 100)
        assert result.did_split

    def test_keeps_below_ratio(self):
        block = Block(address=0, size=140)
        result = ThresholdSplit(ratio=0.5).split(block, 100)
        assert not result.did_split

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ThresholdSplit(ratio=0)
        with pytest.raises(ValueError):
            ThresholdSplit(min_remainder=0)
        with pytest.raises(ValueError):
            AlwaysSplit(min_remainder=-1)


class TestSplittingRegistry:
    def test_all_policies_constructible(self):
        for name in splitting_policy_names():
            assert make_splitting_policy(name).policy_name == name

    def test_registry_complete(self):
        assert set(splitting_policy_names()) == set(SPLITTING_POLICIES)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_splitting_policy("occasionally")
