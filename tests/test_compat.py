"""Backwards-compatibility guarantees of the experiment-API redesign.

Every symbol the ``repro`` package exported before the declarative API
landed must still import and work, so downstream scripts keep running; the
CLI module's old registry globals keep working through deprecation shims
that warn.
"""

import warnings

import pytest

import repro

#: ``repro.__all__`` as it was *before* the declarative experiment API —
#: frozen here on purpose: the package may grow, but nothing in this list
#: may ever stop importing.
PRE_API_EXPORTS = [
    "AllocationTrace",
    "AllocatorConfiguration",
    "AllocatorFactory",
    "EasyportWorkload",
    "EnergyModel",
    "EvaluationBackend",
    "ExplorationEngine",
    "ExplorationRecord",
    "ExplorationSettings",
    "IncrementalParetoFront",
    "METRIC_VERSION",
    "MemoryHierarchy",
    "MemoryModule",
    "MergeError",
    "MetricSet",
    "Parameter",
    "ParameterSpace",
    "PoolMapping",
    "PoolSpec",
    "ProcessPoolBackend",
    "ProfileResult",
    "Profiler",
    "Provenance",
    "ResultDatabase",
    "ResultSink",
    "ResultStore",
    "SerialBackend",
    "ShardSpec",
    "StoreRecordSource",
    "StreamingParetoSink",
    "StreamingResultView",
    "TradeoffAnalysis",
    "VTCWorkload",
    "__version__",
    "build_allocator",
    "compact_parameter_space",
    "configuration_from_point",
    "default_parameter_space",
    "easyport_reference_trace",
    "embedded_three_level",
    "embedded_two_level",
    "exploration_report",
    "explore",
    "merge_databases",
    "pareto_front",
    "profile_trace",
    "smoke_parameter_space",
    "vtc_reference_trace",
]


class TestPackageSurface:
    @pytest.mark.parametrize("name", PRE_API_EXPORTS)
    def test_pre_api_export_still_importable(self, name):
        assert getattr(repro, name) is not None

    def test_pre_api_exports_still_declared(self):
        assert set(PRE_API_EXPORTS) <= set(repro.__all__)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_legacy_engine_flow_still_works(self):
        """The pre-API way of running an exploration is untouched."""
        from repro import ExplorationEngine, smoke_parameter_space
        from repro.workloads.synthetic import UniformRandomWorkload

        trace = UniformRandomWorkload(operations=200).generate(seed=1)
        database = ExplorationEngine(smoke_parameter_space(), trace).explore()
        assert len(database) == smoke_parameter_space().size()


class TestCliShims:
    def test_workloads_shim_warns_and_builds(self):
        with pytest.warns(DeprecationWarning, match="repro.cli.WORKLOADS"):
            from repro.cli import WORKLOADS
        workload = WORKLOADS["easyport"]()
        # The shim reproduces the old hard-coded factory (4000 packets).
        assert workload.packets == 4000
        assert set(WORKLOADS) == set(repro.api.registry.workloads.names())

    def test_spaces_shim_warns_and_builds(self):
        with pytest.warns(DeprecationWarning, match="repro.cli.SPACES"):
            from repro.cli import SPACES
        assert {"default", "compact", "smoke"} <= set(SPACES)
        assert SPACES["smoke"]().size() > 0

    def test_hierarchies_shim_warns_and_builds(self):
        with pytest.warns(DeprecationWarning, match="repro.cli.HIERARCHIES"):
            from repro.cli import HIERARCHIES
        assert {"2level", "3level"} <= set(HIERARCHIES)
        assert len(HIERARCHIES["2level"]()) == 2

    def test_strategies_shim_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.cli.STRATEGIES"):
            from repro.cli import STRATEGIES
        assert {"exhaustive", "random", "hillclimb", "evolutionary"} <= set(
            STRATEGIES
        )

    def test_unknown_cli_attribute_still_raises(self):
        import repro.cli

        with pytest.raises(AttributeError):
            repro.cli.NO_SUCH_THING

    def test_old_provenance_artefacts_still_load(self, tmp_path):
        """Artefacts written before spec hashes existed parse (hash='')."""
        from repro.core.results import Provenance

        old = Provenance.from_dict(
            {"fingerprint": "abc", "space": {}, "metric_version": 1}
        )
        assert old.spec_hash == ""
