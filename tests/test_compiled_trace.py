"""Tests for the columnar trace form and the trace-level caches.

The compiled form is the unit the fast replay loop iterates and the unit
the process-pool backend ships to workers, so it must (a) encode exactly
the replay-relevant information, (b) resolve frees to allocation slots the
way the legacy dict bookkeeping would, (c) pickle compactly, and (d) be
invalidated whenever the trace mutates.
"""

import pickle

import pytest

from repro.profiling.compiled import NO_SLOT, CompiledTrace, compile_trace
from repro.profiling.events import EventKind, alloc, free
from repro.profiling.tracer import AllocationTrace


def simple_trace():
    return AllocationTrace(
        [alloc(0, 16, 0), alloc(1, 32, 1), free(0, 2), alloc(2, 16, 3), free(2, 4)],
        name="demo",
    )


class TestCompileTrace:
    def test_columns_match_events(self):
        trace = simple_trace()
        compiled = trace.compiled()
        assert list(compiled.kinds) == [1, 1, 0, 1, 0]
        assert list(compiled.sizes) == [16, 32, 0, 16, 0]
        assert list(compiled.request_ids) == [0, 1, 0, 2, 2]
        assert list(compiled.timestamps) == [0, 1, 2, 3, 4]
        assert len(compiled) == 5

    def test_slots_resolve_frees_to_allocations(self):
        compiled = simple_trace().compiled()
        # Allocations get dense slots in stream order; frees resolve to the
        # slot of the allocation they release.
        assert list(compiled.slots) == [0, 1, 0, 2, 2]
        assert compiled.slot_count == 3
        assert list(compiled.slot_sizes) == [16, 32, 16]

    def test_double_free_resolves_to_no_slot(self):
        trace = AllocationTrace([alloc(0, 8, 0), free(0, 1), free(0, 2)])
        assert list(trace.compiled().slots) == [0, 0, NO_SLOT]

    def test_free_of_unknown_id_resolves_to_no_slot(self):
        trace = AllocationTrace([free(7, 0), alloc(0, 8, 1)])
        assert list(trace.compiled().slots) == [NO_SLOT, 0]

    def test_reallocated_id_gets_fresh_slot(self):
        trace = AllocationTrace(
            [alloc(0, 8, 0), free(0, 1), alloc(0, 24, 2), free(0, 3)]
        )
        assert list(trace.compiled().slots) == [0, 0, 1, 1]
        assert list(trace.compiled().slot_sizes) == [8, 24]

    def test_fingerprint_carried_from_trace(self):
        trace = simple_trace()
        assert trace.compiled().fingerprint == trace.fingerprint()
        assert trace.compiled().name == "demo"

    def test_events_roundtrip_without_tags(self):
        trace = simple_trace()
        rebuilt = trace.compiled().events()
        assert rebuilt == trace.events
        tagged = AllocationTrace([alloc(0, 8, 0, tag="packet"), free(0, 1)])
        rebuilt = tagged.compiled().events()
        assert rebuilt[0].tag == ""  # tags are not preserved
        assert rebuilt[0].size == 8 and rebuilt[0].kind is EventKind.ALLOC


class TestCompiledPickle:
    def test_pickle_roundtrip(self):
        compiled = simple_trace().compiled()
        clone = pickle.loads(pickle.dumps(compiled))
        assert isinstance(clone, CompiledTrace)
        assert clone.__getstate__() == compiled.__getstate__()

    def test_pickle_is_compact(self):
        events = []
        for index in range(5000):
            events.append(alloc(index, 16 + (index % 7) * 8, index))
            events.append(free(index, index + 1))
        trace = AllocationTrace(events, name="big")
        compiled_payload = pickle.dumps(
            trace.compiled(), protocol=pickle.HIGHEST_PROTOCOL
        )
        event_payload = pickle.dumps(trace.events, protocol=pickle.HIGHEST_PROTOCOL)
        # The columnar form is a fraction of the event-object pickle and
        # within a small constant of its raw array bytes.
        assert len(compiled_payload) < len(event_payload) / 2
        assert len(compiled_payload) < trace.compiled().nbytes() + 2048


class TestTraceCaches:
    def test_compiled_and_fingerprint_are_cached(self):
        trace = simple_trace()
        assert trace.compiled() is trace.compiled()
        assert trace.fingerprint() is trace.fingerprint()

    def test_append_invalidates_caches(self):
        trace = simple_trace()
        before_compiled = trace.compiled()
        before_fingerprint = trace.fingerprint()
        trace.append(alloc(9, 8, 9))
        assert trace.compiled() is not before_compiled
        assert trace.fingerprint() != before_fingerprint
        assert len(trace.compiled()) == 6

    def test_extend_invalidates_caches(self):
        trace = simple_trace()
        before = trace.fingerprint()
        trace.extend([alloc(9, 8, 9), free(9, 10)])
        assert trace.fingerprint() != before

    def test_events_assignment_invalidates_caches(self):
        trace = simple_trace()
        before = trace.fingerprint()
        trace.events = [alloc(0, 8, 0)]
        assert trace.fingerprint() != before
        assert len(trace) == 1

    def test_equality_matches_dataclass_semantics(self):
        assert simple_trace() == simple_trace()
        other = simple_trace()
        other.name = "other"
        assert simple_trace() != other


class TestFromCompiled:
    def test_replay_identity_without_materialising_events(self):
        trace = simple_trace()
        clone = AllocationTrace.from_compiled(trace.compiled())
        assert clone._events is None  # nothing materialised yet
        assert len(clone) == len(trace)
        assert clone.name == trace.name
        assert clone.fingerprint() == trace.fingerprint()
        assert clone._events is None  # still lazy after len/fingerprint
        assert clone.compiled() is trace.compiled()

    def test_events_materialise_on_demand(self):
        trace = simple_trace()
        clone = AllocationTrace.from_compiled(trace.compiled())
        assert clone.events == trace.events
        assert clone == trace

    def test_summary_and_hot_sizes_work_on_rebuilt_trace(self):
        trace = simple_trace()
        clone = AllocationTrace.from_compiled(trace.compiled())
        assert clone.summary().as_dict() == trace.summary().as_dict()
        assert clone.hot_sizes(top=2) == trace.hot_sizes(top=2)


class TestCompileFunction:
    def test_compile_empty(self):
        compiled = compile_trace([], name="empty")
        assert len(compiled) == 0 and compiled.slot_count == 0

    def test_rejects_nothing_on_malformed_traces(self):
        # compile is total: malformed streams (validate() would reject) still
        # lower, mirroring what the legacy replay loop tolerates.
        trace = AllocationTrace([alloc(0, 8, 5), alloc(0, 8, 3)])
        with pytest.raises(Exception):
            trace.validate()
        compiled = trace.compiled()
        assert list(compiled.slots) == [0, 1]
