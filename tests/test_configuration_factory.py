"""Unit tests for configurations and the allocator factory."""

import pytest

from repro.allocator.buddy import BuddyPool
from repro.allocator.errors import ConfigurationError
from repro.allocator.pool import FixedSizePool, GeneralPool, RegionPool
from repro.allocator.segregated import SegregatedFitPool
from repro.allocator.slab import SlabPool
from repro.core.configuration import (
    AllocatorConfiguration,
    PoolSpec,
    configuration_from_point,
)
from repro.core.factory import AllocatorFactory, build_allocator
from repro.core.space import default_parameter_space
from repro.memhier.hierarchy import embedded_three_level, embedded_two_level

HOT_SIZES = [28, 74, 44, 492, 1500]


class TestPoolSpec:
    def test_round_trip(self):
        spec = PoolSpec(name="p", kind="fixed", block_size=74, module="l1_scratchpad")
        assert PoolSpec.from_dict(spec.as_dict()) == spec

    def test_invalid_kind(self):
        with pytest.raises(ConfigurationError):
            PoolSpec(name="p", kind="magic")

    def test_fixed_needs_block_size(self):
        with pytest.raises(ConfigurationError):
            PoolSpec(name="p", kind="fixed")

    def test_needs_name_and_chunk(self):
        with pytest.raises(ConfigurationError):
            PoolSpec(name="", kind="general")
        with pytest.raises(ConfigurationError):
            PoolSpec(name="p", kind="general", chunk_size=0)


class TestAllocatorConfiguration:
    def make_config(self):
        return AllocatorConfiguration(
            pools=[
                PoolSpec(name="d74", kind="fixed", block_size=74, module="l1_scratchpad"),
                PoolSpec(name="general", kind="general", module="main_memory"),
            ],
            label="cfg_test",
        )

    def test_basic_properties(self):
        config = self.make_config()
        assert config.configuration_id == "cfg_test"
        assert [pool.name for pool in config.dedicated_pools] == ["d74"]
        assert config.fallback_pool.name == "general"
        assert config.pools_on_module("l1_scratchpad")[0].name == "d74"

    def test_fingerprint_stability(self):
        assert self.make_config().fingerprint() == self.make_config().fingerprint()

    def test_fingerprint_changes_with_content(self):
        config = self.make_config()
        other = AllocatorConfiguration(
            pools=[PoolSpec(name="general", kind="general")], label=""
        )
        assert config.fingerprint() != other.fingerprint()

    def test_round_trip(self):
        config = self.make_config()
        rebuilt = AllocatorConfiguration.from_dict(config.as_dict())
        assert rebuilt.fingerprint() == config.fingerprint()
        assert rebuilt.label == config.label

    def test_needs_at_least_one_pool(self):
        with pytest.raises(ConfigurationError):
            AllocatorConfiguration(pools=[])

    def test_duplicate_pool_names_rejected(self):
        with pytest.raises(ConfigurationError):
            AllocatorConfiguration(
                pools=[
                    PoolSpec(name="p", kind="general"),
                    PoolSpec(name="p", kind="general"),
                ]
            )

    def test_describe_mentions_pools(self):
        text = self.make_config().describe()
        assert "d74" in text and "general" in text


class TestConfigurationFromPoint:
    def test_zero_dedicated_pools(self):
        config = configuration_from_point({"num_dedicated_pools": 0}, HOT_SIZES)
        assert len(config.pools) == 1
        assert config.pools[0].kind == "general"

    def test_dedicated_pools_created_for_hot_sizes(self):
        point = {
            "num_dedicated_pools": 3,
            "dedicated_pool_kind": "fixed",
            "dedicated_pool_placement": "scratchpad",
        }
        config = configuration_from_point(point, HOT_SIZES)
        dedicated_sizes = [pool.block_size for pool in config.dedicated_pools]
        assert sorted(dedicated_sizes) == sorted(HOT_SIZES[:3])
        # Dispatch order must be smallest first so requests take the tightest pool.
        assert dedicated_sizes == sorted(dedicated_sizes)

    def test_dedicated_count_clamped_to_available_sizes(self):
        config = configuration_from_point({"num_dedicated_pools": 10}, [64, 128])
        assert len(config.dedicated_pools) == 2

    def test_policies_forwarded_to_general_pool(self):
        point = {
            "general_free_list": "address_ordered",
            "general_fit": "best_fit",
            "general_coalescing": "immediate",
            "general_splitting": "always",
            "chunk_size": 8192,
        }
        config = configuration_from_point(point, HOT_SIZES)
        general = config.fallback_pool
        assert general.free_list == "address_ordered"
        assert general.fit == "best_fit"
        assert general.coalescing == "immediate"
        assert general.splitting == "always"
        assert general.chunk_size == 8192

    def test_placement_mapping(self):
        point = {
            "num_dedicated_pools": 1,
            "dedicated_pool_placement": "scratchpad",
            "general_placement": "main",
        }
        config = configuration_from_point(
            point, HOT_SIZES, scratchpad_module="spm", main_module="dram"
        )
        assert config.dedicated_pools[0].module == "spm"
        assert config.fallback_pool.module == "dram"

    def test_parameters_recorded(self):
        point = {"num_dedicated_pools": 1, "general_fit": "best_fit"}
        config = configuration_from_point(point, HOT_SIZES)
        assert config.parameters == point

    def test_negative_dedicated_rejected(self):
        with pytest.raises(ConfigurationError):
            configuration_from_point({"num_dedicated_pools": -1}, HOT_SIZES)

    def test_every_default_space_point_is_buildable(self):
        space = default_parameter_space()
        hierarchy = embedded_two_level()
        factory = AllocatorFactory(hierarchy)
        for point in space.sample(25, seed=11):
            config = configuration_from_point(point, HOT_SIZES)
            built = factory.build(config)
            assert built.allocator.pools


class TestAllocatorFactory:
    def test_pool_kinds_built_correctly(self):
        hierarchy = embedded_two_level()
        config = AllocatorConfiguration(
            pools=[
                PoolSpec(name="fixed", kind="fixed", block_size=74, module="l1_scratchpad"),
                PoolSpec(name="slab", kind="slab", block_size=128, module="l1_scratchpad"),
                PoolSpec(name="region", kind="region", module="main_memory"),
                PoolSpec(name="buddy", kind="buddy", reserved_bytes=1 << 16, module="main_memory"),
                PoolSpec(name="seg", kind="segregated", module="main_memory"),
                PoolSpec(name="general", kind="general", module="main_memory"),
            ]
        )
        built = AllocatorFactory(hierarchy).build(config)
        kinds = {pool.name: type(pool) for pool in built.allocator.pools}
        assert kinds["fixed"] is FixedSizePool
        assert kinds["slab"] is SlabPool
        assert kinds["region"] is RegionPool
        assert kinds["buddy"] is BuddyPool
        assert kinds["seg"] is SegregatedFitPool
        assert kinds["general"] is GeneralPool

    def test_mapping_respects_modules(self):
        hierarchy = embedded_two_level()
        config = configuration_from_point(
            {"num_dedicated_pools": 2, "dedicated_pool_placement": "scratchpad"},
            HOT_SIZES,
            scratchpad_module="l1_scratchpad",
            main_module="main_memory",
        )
        built = build_allocator(config, hierarchy)
        for pool in config.dedicated_pools:
            assert built.mapping.module_of(pool.name).name == "l1_scratchpad"
        assert built.mapping.module_of("general").name == "main_memory"

    def test_bounded_module_shared_between_pools(self):
        hierarchy = embedded_two_level(scratchpad_size=64 * 1024)
        config = configuration_from_point(
            {"num_dedicated_pools": 4, "dedicated_pool_placement": "scratchpad"},
            HOT_SIZES,
        )
        built = build_allocator(config, hierarchy)
        capacities = [
            built.allocator.pool_named(spec.name).space.capacity
            for spec in config.dedicated_pools
        ]
        assert all(capacity is not None for capacity in capacities)
        assert sum(capacities) <= 64 * 1024

    def test_scratchpad_alias_resolution(self):
        hierarchy = embedded_three_level()
        config = configuration_from_point(
            {"num_dedicated_pools": 1, "dedicated_pool_placement": "scratchpad"},
            HOT_SIZES,
            scratchpad_module="scratchpad",
            main_module="main",
        )
        built = AllocatorFactory(hierarchy).build(config)
        assert built.mapping.module_of(config.dedicated_pools[0].name).name == hierarchy.fastest.name

    def test_unknown_module_rejected(self):
        hierarchy = embedded_two_level()
        config = AllocatorConfiguration(
            pools=[PoolSpec(name="general", kind="general", module="l7_cache")]
        )
        with pytest.raises(ConfigurationError):
            AllocatorFactory(hierarchy).build(config)

    def test_built_allocator_serves_requests(self):
        hierarchy = embedded_two_level()
        config = configuration_from_point({"num_dedicated_pools": 2}, HOT_SIZES)
        built = build_allocator(config, hierarchy)
        addresses = [built.allocator.malloc(size) for size in (28, 74, 300, 1500)]
        for address in addresses:
            built.allocator.free(address)
        assert built.allocator.check_all_freed()
