"""Unit tests for the distributed exploration service (repro.distrib).

Everything here runs in-process (threads and socketpairs, no subprocesses):
the wire protocol, the store primitives the service is built on
(``refresh`` / ``missing_points``), range evaluation, the ``serve`` spec
surface, the coordinator's spec gates, and a complete coordinator+worker
sweep including the spec-hash rejection path.  The multi-process fault
matrix lives in ``test_distrib_cluster.py``.
"""

import socket
import struct
import threading

import pytest

from repro.api.spec import ExperimentSpec, SpecError
from repro.core.exploration import (
    ExplorationEngine,
    ExplorationSettings,
    ShardSpec,
)
from repro.core.space import smoke_parameter_space
from repro.core.store import ResultStore
from repro.distrib import (
    Coordinator,
    DistribError,
    MessageBuffer,
    ProtocolError,
    Worker,
    parse_address,
    recv_message,
    send_message,
)
from repro.distrib.coordinator import auto_lease_size
from repro.distrib.worker import (
    EXIT_DONE,
    EXIT_REJECTED,
)
from repro.distrib.protocol import MAX_MESSAGE_BYTES, encode_message
from repro.workloads.synthetic import UniformRandomWorkload


@pytest.fixture(scope="module")
def small_trace():
    return UniformRandomWorkload(operations=300).generate(seed=7)


def smoke_spec(**overrides) -> ExperimentSpec:
    return ExperimentSpec.from_dict(
        {
            "spec_version": 1,
            "workload": {"name": "uniform", "params": {"operations": 300}},
            "space": "smoke",
            "seed": 1,
            **overrides,
        }
    )


class TestProtocol:
    def test_round_trip_over_a_socketpair(self):
        left, right = socket.socketpair()
        with left, right:
            send_message(left, {"type": "hello", "worker": "w1", "n": 3})
            assert recv_message(right) == {"type": "hello", "worker": "w1", "n": 3}
            send_message(right, {"type": "ack"})
            assert recv_message(left) == {"type": "ack"}

    def test_clean_eof_is_none(self):
        left, right = socket.socketpair()
        with right:
            left.close()
            assert recv_message(right) is None

    def test_eof_mid_frame_raises(self):
        left, right = socket.socketpair()
        with right:
            left.sendall(struct.pack(">I", 10) + b"abc")
            left.close()
            with pytest.raises(ProtocolError, match="bytes short"):
                recv_message(right)

    def test_oversized_announcement_is_rejected_before_allocation(self):
        left, right = socket.socketpair()
        with left, right:
            left.sendall(struct.pack(">I", MAX_MESSAGE_BYTES + 1))
            with pytest.raises(ProtocolError, match="limit"):
                recv_message(right)

    def test_non_object_payload_is_rejected(self):
        left, right = socket.socketpair()
        with left, right:
            payload = b"[1,2,3]"
            left.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(ProtocolError, match="JSON object"):
                recv_message(right)

    def test_buffer_decodes_byte_by_byte(self):
        wire = encode_message({"type": "lease", "start": 0, "stop": 4})
        buffer = MessageBuffer()
        for byte in wire:
            assert buffer.take() == []  # nothing until the last byte
            buffer.feed(bytes([byte]))
        assert buffer.take() == [{"type": "lease", "start": 0, "stop": 4}]
        assert len(buffer) == 0

    def test_buffer_decodes_coalesced_messages_in_order(self):
        wire = encode_message({"n": 1}) + encode_message({"n": 2})
        half = len(wire) // 2
        buffer = MessageBuffer()
        buffer.feed(wire[:half])
        first = buffer.take()
        buffer.feed(wire[half:])
        assert first + buffer.take() == [{"n": 1}, {"n": 2}]

    def test_buffer_rejects_undecodable_frames(self):
        buffer = MessageBuffer()
        buffer.feed(struct.pack(">I", 3) + b"\xff\xfe\xfd")
        with pytest.raises(ProtocolError, match="undecodable"):
            buffer.take()


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.7:5151") == ("10.0.0.7", 5151)

    @pytest.mark.parametrize("text", ["nocolon", ":5151", "host:", "host:abc"])
    def test_malformed_addresses_raise(self, text):
        with pytest.raises(ValueError):
            parse_address(text)


class TestStoreCoordination:
    """The two store primitives the service is built on."""

    def test_refresh_sees_appends_from_another_handle(self, tmp_path, small_trace):
        path = tmp_path / "store.jsonl"
        engine = ExplorationEngine(smoke_parameter_space(), small_trace)
        reader = ResultStore(path)
        with ResultStore(path) as writer:
            for index in (0, 1):
                point = engine.space.point_at(index)
                writer.put("fp", point, engine.run_point(point))
        assert reader.get("fp", engine.space.point_at(0)) is None
        assert reader.refresh() == 2
        assert reader.get("fp", engine.space.point_at(0)) is not None
        assert reader.refresh() == 0  # idempotent: nothing new

    def test_missing_points_reports_the_uncommitted_subset(
        self, tmp_path, small_trace
    ):
        engine = ExplorationEngine(smoke_parameter_space(), small_trace)
        pairs = engine.points_in_range(0, 4)
        store = ResultStore(tmp_path / "store.jsonl")
        store.put("fp", pairs[1][1], engine.run_point(pairs[1][1]))
        store.put("fp", pairs[3][1], engine.run_point(pairs[3][1]))
        missing = store.missing_points("fp", pairs)
        assert [index for index, _point in missing] == [0, 2]
        assert store.missing_points("other-fp", pairs) == pairs


class TestExploreRange:
    def test_range_matches_the_full_sweep_slice(self, small_trace):
        space = smoke_parameter_space()
        full = ExplorationEngine(space, small_trace).explore()
        ranged = ExplorationEngine(space, small_trace).explore_range(2, 5)
        assert [r.configuration.label for r in ranged.records] == [
            "cfg00002",
            "cfg00003",
            "cfg00004",
        ]
        for record in ranged.records:
            twin = next(
                r
                for r in full.records
                if r.configuration.label == record.configuration.label
            )
            assert record.metrics == twin.metrics

    def test_range_provenance_records_the_slice(self, small_trace):
        database = ExplorationEngine(
            smoke_parameter_space(), small_trace
        ).explore_range(1, 3)
        assert database.provenance is not None
        assert database.provenance.shard == "1:3"

    def test_ranges_reject_sharded_settings(self, small_trace):
        engine = ExplorationEngine(
            smoke_parameter_space(),
            small_trace,
            settings=ExplorationSettings(shard=ShardSpec.parse("1/2")),
        )
        with pytest.raises(ValueError, match="shard"):
            engine.points_in_range(0, 2)

    def test_invalid_bounds_are_rejected(self, small_trace):
        engine = ExplorationEngine(smoke_parameter_space(), small_trace)
        with pytest.raises(ValueError, match="invalid range"):
            engine.points_in_range(3, 1)


class TestServeSpec:
    def test_defaults_validate(self):
        smoke_spec().validate()

    def test_unknown_transport_is_rejected(self):
        with pytest.raises(SpecError, match="serve.name"):
            smoke_spec(serve="carrier-pigeon").validate()

    def test_unknown_parameter_is_rejected(self):
        spec = smoke_spec(
            serve={"name": "tcp", "params": {"lease_duration": 5}}
        )
        with pytest.raises(SpecError, match="lease_duration"):
            spec.validate()

    def test_mistyped_parameter_is_rejected(self):
        spec = smoke_spec(serve={"name": "tcp", "params": {"port": "5151"}})
        with pytest.raises(SpecError, match="serve.params.port"):
            spec.validate()

    def test_serve_settings_do_not_change_the_spec_hash(self):
        plain = smoke_spec()
        served = smoke_spec(
            serve={
                "name": "tcp",
                "params": {"host": "0.0.0.0", "port": 5151, "lease_size": 2},
            }
        )
        assert plain.spec_hash() == served.spec_hash()

    def test_serve_round_trips_through_the_document(self):
        spec = smoke_spec(serve={"name": "tcp", "params": {"port": 5151}})
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert again.serve.params == {"port": 5151}


class TestCoordinatorGates:
    def test_heuristic_strategies_cannot_be_served(self, tmp_path):
        spec = smoke_spec(
            strategy={"name": "random", "params": {"budget": 4}}
        )
        with pytest.raises(DistribError, match="strategy"):
            Coordinator(spec, store_path=str(tmp_path / "s.jsonl"))

    def test_sharded_specs_cannot_be_served(self, tmp_path):
        spec = smoke_spec(shard="1/2")
        with pytest.raises(DistribError, match="shard"):
            Coordinator(spec, store_path=str(tmp_path / "s.jsonl"))

    def test_sampled_specs_cannot_be_served(self, tmp_path):
        spec = smoke_spec(sample=4)
        with pytest.raises(DistribError, match="exhaustive"):
            Coordinator(spec, store_path=str(tmp_path / "s.jsonl"))

    def test_nonpositive_lease_timeout_is_rejected(self, tmp_path):
        with pytest.raises(DistribError, match="lease_timeout"):
            Coordinator(
                smoke_spec(),
                lease_timeout=0,
                store_path=str(tmp_path / "s.jsonl"),
            )

    def test_auto_lease_size_balances_without_degenerating(self):
        assert auto_lease_size(8) == 1
        assert auto_lease_size(3125) == 195
        assert auto_lease_size(1) == 1


class TestInProcessCluster:
    """One coordinator thread, workers in the main thread."""

    def start_coordinator(self, tmp_path, **options):
        coordinator = Coordinator(
            smoke_spec(),
            host="127.0.0.1",
            port=0,
            store_path=str(tmp_path / "store.jsonl"),
            log=lambda line: None,
            **options,
        )
        thread = threading.Thread(target=coordinator.serve, daemon=True)
        thread.start()
        deadline = 50
        while coordinator.address is None and deadline:
            threading.Event().wait(0.1)
            deadline -= 1
        assert coordinator.address is not None, "coordinator never bound"
        return coordinator, thread

    def test_sweep_with_spec_hash_rejection_en_route(self, tmp_path):
        coordinator, thread = self.start_coordinator(tmp_path, lease_size=3)
        quiet = lambda line: None  # noqa: E731
        # A worker built from a *different* experiment is turned away...
        imposter = Worker(
            coordinator.address,
            spec_hash=smoke_spec(seed=2).spec_hash(),
            name="imposter",
            log=quiet,
        )
        assert imposter.run() == EXIT_REJECTED
        # ...while a matching one (and an agnostic one) complete the sweep.
        matching = Worker(
            coordinator.address,
            spec_hash=smoke_spec().spec_hash(),
            name="matching",
            log=quiet,
        )
        assert matching.run() == EXIT_DONE
        thread.join(timeout=30)
        assert not thread.is_alive()
        database = coordinator.database
        assert database is not None
        assert len(database) == 8
        assert database.cache_misses == 8 and database.cache_hits == 0
        assert database.provenance is not None
        assert database.provenance.spec_hash == smoke_spec().spec_hash()
        assert database.provenance.shard == ""
        assert coordinator.stats["leases_granted"] >= 3
        assert coordinator.stats["workers_seen"] == {"matching"}


class TestAutoCompaction:
    """Coordinator-driven compaction of the shared store between leases."""

    def _coordinator(self, tmp_path, threshold):
        params = {"path": str(tmp_path / "shared.jsonl")}
        if threshold is not None:
            params["auto_compact"] = threshold
        spec = smoke_spec(store={"name": "jsonl", "params": params})
        return Coordinator(spec, log=lambda *_args: None)

    def test_threshold_reaches_only_the_coordinator_store(self, tmp_path):
        coordinator = self._coordinator(tmp_path, threshold=3)
        assert coordinator.store.auto_compact == 3
        # The document announced to workers stays threshold-free, so the
        # coordinator is the only process that ever rewrites the file.
        announced = coordinator._spec_document()
        assert "auto_compact" not in announced["store"]["params"]
        coordinator.store.close()

    def test_compacts_when_dead_entries_cross_the_threshold(self, tmp_path):
        coordinator = self._coordinator(tmp_path, threshold=3)
        engine = coordinator._resolved.engine
        point = engine.space.point_at(0)
        record = engine.run_point(point)
        # Workers re-evaluating a re-leased range race blind: each handle
        # opened before the others' appends re-commits the same key, and
        # every duplicate is a dead entry after the coordinator's refresh.
        writers = [ResultStore(coordinator.store.path) for _ in range(4)]
        for writer in writers:
            writer.put("fp", point, record)
        for writer in writers:
            writer.close()
        coordinator._maybe_compact()
        assert coordinator.stats["auto_compactions"] == 1
        assert coordinator.store.dead_entries == 0
        assert coordinator.store.get("fp", point) is not None
        # Nothing dead any more: the next quiet point is a no-op.
        coordinator._maybe_compact()
        assert coordinator.stats["auto_compactions"] == 1
        coordinator.store.close()

    def test_below_threshold_is_left_alone(self, tmp_path):
        coordinator = self._coordinator(tmp_path, threshold=10)
        engine = coordinator._resolved.engine
        point = engine.space.point_at(0)
        record = engine.run_point(point)
        racers = [ResultStore(coordinator.store.path) for _ in range(2)]
        for writer in racers:
            writer.put("fp", point, record)
        for writer in racers:
            writer.close()
        coordinator._maybe_compact()
        assert coordinator.stats["auto_compactions"] == 0
        assert coordinator.store.dead_entries == 1
        coordinator.store.close()

    def test_store_without_threshold_is_never_touched(self, tmp_path):
        coordinator = self._coordinator(tmp_path, threshold=None)
        assert coordinator.store.auto_compact is None
        coordinator._maybe_compact()
        assert coordinator.stats["auto_compactions"] == 0
        coordinator.store.close()
