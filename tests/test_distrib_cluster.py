"""Multi-process cluster tests: byte-identity under fault injection.

Every test here spawns a *real* 3-process cluster — one coordinator and two
workers, launched as OS processes through ``distrib_harness.py`` — runs the
same experiment single-host in-process, and asserts the two artefacts are
**byte-identical**.  The fault matrix:

* clean cluster (no faults),
* a worker SIGKILLed mid-sweep and restarted (its abandoned range is
  requeued on disconnect and resumed from the store),
* a lease that expires (the worker goes silent) and is re-leased to
  another worker while the original eventually reports late,
* a worker SIGKILLed *mid-store-append* (a torn write the loader must
  recover from; the resumed sweep re-evaluates only the lost points).

``make verify-cluster`` runs this file; the CI cluster job selects the
clean and the killed-worker variants as its matrix.
"""

import re
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
import distrib_harness as harness  # noqa: E402

from repro.api.spec import ExperimentSpec  # noqa: E402
from repro.cli import main  # noqa: E402
from repro.core.store import ResultStore  # noqa: E402

pytestmark = pytest.mark.timeout(180)

SIGKILLED = -9

PROFILED = r"lease \d+ \[{start},{stop}\) done: (\d+) profiled, (\d+) from store"


@pytest.fixture()
def cluster(tmp_path):
    """Spec file, store/artefact paths, and the single-host reference bytes."""
    spec = ExperimentSpec.from_dict(
        {
            "spec_version": 1,
            "workload": {"name": "uniform", "params": {"operations": 300}},
            "space": "smoke",
            "seed": 1,
        }
    )
    experiment = tmp_path / "experiment.json"
    spec.to_json(experiment)
    reference = tmp_path / "single-host.json"
    assert main(["run", str(experiment), "--out", str(reference)]) == 0
    return {
        "experiment": experiment,
        "store": tmp_path / "store.jsonl",
        "out": tmp_path / "cluster.json",
        "reference": reference.read_bytes(),
    }


def assert_byte_identical(cluster):
    produced = cluster["out"].read_bytes()
    assert produced == cluster["reference"], (
        "distributed artefact differs from the single-host run "
        f"({len(produced)} vs {len(cluster['reference'])} bytes)"
    )


class TestCleanCluster:
    def test_clean_cluster_matches_single_host(self, cluster):
        coordinator, address = harness.spawn_coordinator(
            cluster["experiment"],
            store=cluster["store"],
            out=cluster["out"],
            lease_size=3,
        )
        workers = [
            harness.spawn_worker(address, name=f"w{i}") for i in (1, 2)
        ]
        try:
            assert coordinator.wait() == 0
            assert [w.wait() for w in workers] == [0, 0]
        finally:
            coordinator.kill()
            for worker in workers:
                worker.kill()
        assert_byte_identical(cluster)
        assert "sweep complete: 8 records" in coordinator.output


class TestKilledWorker:
    def test_killed_and_restarted_worker_matches_single_host(self, cluster):
        coordinator, address = harness.spawn_coordinator(
            cluster["experiment"],
            store=cluster["store"],
            out=cluster["out"],
            lease_size=2,
        )
        # w1 evaluates its second lease fully, then dies *before* reporting
        # it: the coordinator must requeue the range on disconnect, and the
        # successor must find every point already in the store.
        victim = harness.spawn_worker(address, name="w1", chaos="kill-before:2")
        survivors = []
        try:
            assert victim.wait() == SIGKILLED
            coordinator.wait_for_line(r"worker w1 gone .*requeued 1 lease")
            survivors = [
                harness.spawn_worker(address, name="w1"),  # the restart
                harness.spawn_worker(address, name="w2"),
            ]
            assert coordinator.wait() == 0
            assert [w.wait() for w in survivors] == [0, 0]
        finally:
            coordinator.kill()
            for worker in [victim, *survivors]:
                worker.kill()
        assert_byte_identical(cluster)
        # The re-leased range was recovered from the store, not re-profiled.
        recovered = re.search(
            PROFILED.format(start=2, stop=4),
            survivors[0].output + survivors[1].output,
        )
        assert recovered is not None
        assert recovered.groups() == ("0", "2")


class TestExpiredLease:
    def test_expired_lease_is_releases_and_late_completion_tolerated(
        self, cluster
    ):
        coordinator, address = harness.spawn_coordinator(
            cluster["experiment"],
            store=cluster["store"],
            out=cluster["out"],
            lease_size=4,
            lease_timeout=1.0,
        )
        # w1 takes [0,4), commits every point, then goes silent for longer
        # than the lease timeout before reporting completion.
        stalled = harness.spawn_worker(address, name="w1", chaos="stall:4")
        coordinator.wait_for_line(r"lease 1 \[0,4\) -> w1")
        fresh = harness.spawn_worker(address, name="w2")
        try:
            coordinator.wait_for_line(r"lease 1 \[0,4\) of w1 expired; requeued")
            assert coordinator.wait() == 0
            assert fresh.wait() == 0
            # The stalled worker exits cleanly when its late completion
            # lands inside the drain window, or with the connection-lost
            # code when the coordinator is already gone — never a crash.
            assert stalled.wait() in (0, 3)
        finally:
            coordinator.kill()
            stalled.kill()
            fresh.kill()
        assert_byte_identical(cluster)
        # The re-leased range cost nothing: all four points were committed
        # by the stalled worker before it went silent.
        releases = re.search(PROFILED.format(start=0, stop=4), fresh.output)
        assert releases is not None
        assert releases.groups() == ("0", "4")


class TestTornWrite:
    def test_torn_write_is_recovered_and_only_lost_points_reprofiled(
        self, cluster
    ):
        coordinator, address = harness.spawn_coordinator(
            cluster["experiment"],
            store=cluster["store"],
            out=cluster["out"],
            lease_size=4,
        )
        # w1 commits two points of [0,4) intact, then dies halfway through
        # writing the third entry line: point 2's bytes are torn, point 3
        # was never evaluated.
        victim = harness.spawn_worker(address, name="w1", chaos="torn-write:3")
        successor = None
        try:
            assert victim.wait() == SIGKILLED
            coordinator.wait_for_line(r"worker w1 gone .*requeued 1 lease")
            successor = harness.spawn_worker(address, name="w2")
            assert coordinator.wait() == 0
            assert successor.wait() == 0
        finally:
            coordinator.kill()
            victim.kill()
            if successor is not None:
                successor.kill()
        assert_byte_identical(cluster)
        # Exactly the torn and the never-evaluated point were re-profiled;
        # the two intact commits were served from the store.
        resumed = re.search(PROFILED.format(start=0, stop=4), successor.output)
        assert resumed is not None
        assert resumed.groups() == ("2", "2")
        # A fresh loader sees (and skips) the torn line.
        store = ResultStore(cluster["store"])
        assert store.corrupt_entries == 1
        assert len(store) == 8
