"""Documentation smoke tests: the docs must describe the tool that exists.

Three layers of protection against doc rot:

1. every relative link in README.md and docs/*.md resolves to a real file,
2. every ``dmexplore`` command line shown in any fenced ``sh`` block parses
   against the real argument parser (unknown flags / renamed subcommands
   fail immediately),
3. the README quickstart and the whole docs/exploring.md tutorial are
   *executed* verbatim, shell and Python blocks alike, in a scratch
   directory — so the walk-through the docs promise is the walk-through
   that runs.

Conventions the docs follow to stay executable: tutorial ``sh`` blocks
contain plain ``dmexplore ...`` lines (no shell substitutions or
redirection); illustrative-only commands live in ``docs/cli.md`` (parsed,
never executed) or in ``text`` blocks.
"""

import re
import shlex
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO = Path(__file__).resolve().parent.parent

DOC_FILES = [
    REPO / "README.md",
    REPO / "docs" / "api.md",
    REPO / "docs" / "architecture.md",
    REPO / "docs" / "cli.md",
    REPO / "docs" / "distributed.md",
    REPO / "docs" / "exploring.md",
    REPO / "docs" / "performance.md",
    REPO / "docs" / "search.md",
    REPO / "docs" / "store.md",
    REPO / "docs" / "workloads.md",
]

FENCE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)
LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)\)")


def fenced_blocks(path: Path, language: str) -> list[str]:
    """All fenced code blocks of ``language`` in ``path``, in order."""
    return [
        body
        for lang, body in FENCE.findall(path.read_text(encoding="utf-8"))
        if lang == language
    ]


def dmexplore_lines(blocks: list[str]) -> list[str]:
    """The ``dmexplore ...`` command lines inside the given sh blocks."""
    lines = []
    for block in blocks:
        for line in block.splitlines():
            line = line.strip()
            if line.startswith("dmexplore"):
                lines.append(line)
    return lines


def run_line(line: str) -> int:
    """Execute one documented dmexplore command through the real CLI."""
    argv = shlex.split(line)[1:]
    return main(argv)


class TestDocsExist:
    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_doc_exists_and_is_substantial(self, path):
        assert path.exists(), f"{path} is missing"
        assert len(path.read_text(encoding="utf-8")) > 500

    def test_architecture_names_real_modules(self):
        """Every `repro.x.y` module the architecture doc cites must import."""
        import importlib

        text = (REPO / "docs" / "architecture.md").read_text(encoding="utf-8")
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        assert modules, "architecture.md should cite repro modules"
        for dotted in sorted(modules):
            parts = dotted.split(".")
            # Trim a trailing attribute (class/function) down to the module.
            for end in range(len(parts), 1, -1):
                try:
                    importlib.import_module(".".join(parts[:end]))
                    break
                except ModuleNotFoundError:
                    continue
            else:
                pytest.fail(f"architecture.md cites unknown module {dotted}")


class TestLinks:
    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_relative_links_resolve(self, path):
        text = path.read_text(encoding="utf-8")
        for target in LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            resolved = (path.parent / target).resolve()
            assert resolved.exists(), f"{path.name} links to missing {target}"


class TestCommandsParse:
    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_every_documented_command_parses(self, path):
        parser = build_parser()
        lines = dmexplore_lines(fenced_blocks(path, "sh"))
        for line in lines:
            argv = shlex.split(line)[1:]
            if "--help" in argv:
                continue
            try:
                parser.parse_args(argv)
            except SystemExit:
                pytest.fail(f"{path.name} documents an invalid command: {line}")

    def test_cli_doc_covers_every_subcommand_and_flag(self):
        """docs/cli.md must mention every subcommand and every long flag."""
        text = (REPO / "docs" / "cli.md").read_text(encoding="utf-8")
        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, __import__("argparse")._SubParsersAction)
        )
        for name, sub in subparsers.choices.items():
            assert f"dmexplore {name}" in text, f"cli.md misses subcommand {name}"
            for action in sub._actions:
                for option in action.option_strings:
                    if option.startswith("--") and option != "--help":
                        assert option in text, (
                            f"cli.md misses {option} of 'dmexplore {name}'"
                        )


class TestReadmeQuickstartRuns:
    def test_quickstart_shell_block(self, tmp_path, monkeypatch, capsys):
        """The first dmexplore sh block in the README runs end to end."""
        monkeypatch.chdir(tmp_path)
        blocks = [
            block
            for block in fenced_blocks(REPO / "README.md", "sh")
            if dmexplore_lines([block])
        ]
        assert blocks, "README has no runnable quickstart block"
        for line in dmexplore_lines([blocks[0]]):
            assert run_line(line) == 0, f"README quickstart failed: {line}"
        assert "Pareto" in capsys.readouterr().out

    def test_readme_python_blocks(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        for block in fenced_blocks(REPO / "README.md", "python"):
            exec(compile(block, "README.md", "exec"), {})


class TestApiDocRuns:
    def test_api_python_blocks_run_verbatim(self, tmp_path, monkeypatch):
        """Every python block of docs/api.md executes (incl. registration)."""
        monkeypatch.chdir(tmp_path)
        blocks = fenced_blocks(REPO / "docs" / "api.md", "python")
        assert blocks, "api.md should contain runnable python examples"
        for block in blocks:
            exec(compile(block, "api.md", "exec"), {})

    def test_api_spec_flow_runs(self, tmp_path, monkeypatch, capsys):
        """The spec -> run -> byte-identity promise of api.md, executed."""
        monkeypatch.chdir(tmp_path)
        assert run_line("dmexplore spec --out experiment.json") == 0
        assert run_line(
            "dmexplore run experiment.json --set workload.name=uniform"
            " --set space.name=smoke --set seed=1 --out run.json"
        ) == 0
        assert run_line(
            "dmexplore explore --workload uniform --space smoke --seed 1"
            " --out flags.json"
        ) == 0
        assert (tmp_path / "run.json").read_bytes() == (
            tmp_path / "flags.json"
        ).read_bytes()
        assert run_line("dmexplore run experiment.json --dry-run") == 0
        assert run_line("dmexplore list") == 0
        output = capsys.readouterr().out
        assert "strategies:" in output


class TestWorkloadsDocRuns:
    def test_workloads_python_blocks_run_verbatim(self, tmp_path, monkeypatch):
        """Every python block of docs/workloads.md executes in order."""
        monkeypatch.chdir(tmp_path)
        blocks = fenced_blocks(REPO / "docs" / "workloads.md", "python")
        assert blocks, "workloads.md should contain runnable python examples"
        for block in blocks:
            exec(compile(block, "workloads.md", "exec"), {})


class TestDistributedDocRuns:
    def test_distributed_python_blocks_run_verbatim(self, tmp_path, monkeypatch):
        """The embedded-cluster example of docs/distributed.md, executed.

        The block runs a real coordinator (thread) and worker, then asserts
        its own promise: the distributed artefact is byte-identical to the
        single-host run.
        """
        monkeypatch.chdir(tmp_path)
        blocks = fenced_blocks(REPO / "docs" / "distributed.md", "python")
        assert blocks, "distributed.md should contain a runnable example"
        for block in blocks:
            exec(compile(block, "distributed.md", "exec"), {})


class TestStoreDocRuns:
    def test_store_doc_runs_verbatim(self, tmp_path, monkeypatch, capsys):
        """Every sh and python block of docs/store.md, in order."""
        monkeypatch.chdir(tmp_path)
        text = (REPO / "docs" / "store.md").read_text(encoding="utf-8")
        for language, body in FENCE.findall(text):
            if language == "sh":
                for line in dmexplore_lines([body]):
                    assert run_line(line) == 0, f"store doc command failed: {line}"
            elif language == "python":
                exec(compile(body, "store.md", "exec"), {})
        output = capsys.readouterr().out
        # The doc's promises hold: the warm run was answered from the store...
        assert "8 hits" in output
        # ...and store info reported a healthy binary store.
        assert "format:  binary" in output
        # The warm re-run reproduced the cold results: the artefacts agree
        # on everything except the store hit counters in the provenance.
        import json

        cold = json.loads((tmp_path / "sweep.json").read_text())
        warm = json.loads((tmp_path / "warm.json").read_text())
        for document in (cold, warm):
            for counter in ("store", "cache"):
                document.get("provenance", document).pop(counter, None)
                document.pop(counter, None)
        assert cold == warm
        # The conversion emitted a jsonl twin of the binary store.
        assert (tmp_path / "results.jsonl").exists()


class TestSearchDocRuns:
    def test_search_doc_runs_verbatim(self, tmp_path, monkeypatch, capsys):
        """Every sh and python block of docs/search.md, in order."""
        monkeypatch.chdir(tmp_path)
        text = (REPO / "docs" / "search.md").read_text(encoding="utf-8")
        for language, body in FENCE.findall(text):
            if language == "sh":
                for line in dmexplore_lines([body]):
                    assert run_line(line) == 0, f"search doc command failed: {line}"
            elif language == "python":
                exec(compile(body, "search.md", "exec"), {})
        output = capsys.readouterr().out
        # The doc's promises hold: `list strategies` advertises the whole
        # portfolio with its tunable parameters ...
        for name in ("nsga2", "tpe", "surrogate"):
            assert name in output
        assert "params: budget=" in output
        # ... the CLI surrogate run produced a front ...
        assert "Pareto-optimal" in output
        assert (tmp_path / "surrogate.json").exists()
        # ... the hypervolume block measured all three portfolio members ...
        assert output.count("of the exhaustive hypervolume") == 3
        # ... and the model-skip block exercised the surrogate counter.
        assert "model ranked out" in output


class TestTutorialRuns:
    def test_exploring_tutorial_runs_verbatim(self, tmp_path, monkeypatch, capsys):
        """Every sh and python block of docs/exploring.md, in order."""
        monkeypatch.chdir(tmp_path)
        path = REPO / "docs" / "exploring.md"
        text = path.read_text(encoding="utf-8")
        for language, body in FENCE.findall(text):
            if language == "sh":
                for line in dmexplore_lines([body]):
                    assert run_line(line) == 0, f"tutorial command failed: {line}"
            elif language == "python":
                exec(compile(body, "exploring.md", "exec"), {})
        output = capsys.readouterr().out
        # The tutorial's promises hold: the resumed run profiled nothing ...
        assert "0 profiled" in output
        # ... and the merge produced a Pareto front.
        assert "Pareto-optimal configurations after merge" in output
        # Byte-identity promise of step 4: merged == what a single run writes.
        merged = (tmp_path / "merged.json").read_bytes()
        assert run_line(
            "dmexplore explore --workload uniform --space smoke --seed 1"
            " --out single.json"
        ) == 0
        assert (tmp_path / "single.json").read_bytes() == merged
