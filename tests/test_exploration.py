"""Unit tests for the exploration engine, result database and trade-off analysis."""

import pytest

from repro.core.configuration import AllocatorConfiguration, PoolSpec
from repro.core.exploration import ExplorationEngine, ExplorationSettings, explore
from repro.core.results import ExplorationRecord, ResultDatabase
from repro.core.space import smoke_parameter_space
from repro.core.tradeoff import TradeoffAnalysis, compare_against_baseline
from repro.memhier.hierarchy import embedded_two_level
from repro.profiling.metrics import MetricSet, metric_keys
from repro.workloads.easyport import EasyportWorkload
from repro.workloads.synthetic import FixedSizesWorkload


@pytest.fixture(scope="module")
def small_trace():
    return EasyportWorkload(packets=200).generate(seed=3)


@pytest.fixture(scope="module")
def smoke_database(small_trace):
    engine = ExplorationEngine(smoke_parameter_space(), small_trace)
    return engine.explore()


def make_record(label, accesses, footprint, energy=1.0, cycles=1, oom=0):
    configuration = AllocatorConfiguration(
        pools=[PoolSpec(name="general", kind="general")], label=label
    )
    return ExplorationRecord(
        configuration=configuration,
        metrics=MetricSet(accesses=accesses, footprint=footprint, energy_nj=energy, cycles=cycles),
        trace_name="t",
        oom_failures=oom,
    )


class TestExplorationEngine:
    def test_explores_every_point(self, small_trace, smoke_database):
        assert len(smoke_database) == smoke_parameter_space().size()

    def test_results_are_deterministic(self, small_trace):
        first = ExplorationEngine(smoke_parameter_space(), small_trace).explore()
        second = ExplorationEngine(smoke_parameter_space(), small_trace).explore()
        for a, b in zip(first, second):
            assert a.metrics == b.metrics
            assert a.configuration.fingerprint() == b.configuration.fingerprint()

    def test_sampled_exploration(self, small_trace):
        settings = ExplorationSettings(sample=3, sample_seed=1)
        engine = ExplorationEngine(smoke_parameter_space(), small_trace, settings=settings)
        assert len(engine.explore()) == 3

    def test_dedicated_pools_reduce_accesses(self, small_trace, smoke_database):
        without = [
            record
            for record in smoke_database
            if record.parameters["num_dedicated_pools"] == 0
        ]
        with_pools = [
            record
            for record in smoke_database
            if record.parameters["num_dedicated_pools"] > 0
        ]
        assert min(r.metrics.accesses for r in with_pools) < min(
            r.metrics.accesses for r in without
        )

    def test_scratchpad_configs_use_less_energy_than_all_dram(self, small_trace):
        # Same policies, only the dedicated pool placement differs.
        engine = ExplorationEngine(smoke_parameter_space(), small_trace)
        base_point = {
            "num_dedicated_pools": 3,
            "dedicated_pool_kind": "fixed",
            "dedicated_pool_placement": "scratchpad",
            "general_free_list": "lifo",
            "general_fit": "first_fit",
            "general_coalescing": "never",
            "general_splitting": "always",
            "chunk_size": 4096,
        }
        scratchpad_record = engine.run_point(base_point)
        dram_point = dict(base_point, dedicated_pool_placement="main")
        dram_record = engine.run_point(dram_point)
        assert scratchpad_record.metrics.energy_nj < dram_record.metrics.energy_nj

    def test_progress_callback(self, small_trace):
        calls = []
        engine = ExplorationEngine(
            smoke_parameter_space(),
            small_trace,
            progress_callback=lambda done, total: calls.append((done, total)),
        )
        engine.explore()
        assert calls[-1][0] == smoke_parameter_space().size()

    def test_hot_sizes_default_from_trace(self, small_trace):
        engine = ExplorationEngine(smoke_parameter_space(), small_trace)
        assert engine.hot_sizes == small_trace.hot_sizes(top=8)

    def test_explore_helper(self, small_trace):
        database = explore(smoke_parameter_space(), small_trace, sample=2)
        assert len(database) == 2

    def test_engine_with_explicit_hierarchy(self, small_trace):
        hierarchy = embedded_two_level(scratchpad_size=32 * 1024)
        engine = ExplorationEngine(
            smoke_parameter_space(), small_trace, hierarchy=hierarchy
        )
        record = engine.run_point(smoke_parameter_space().point_at(0))
        assert record.metrics.accesses > 0


class TestResultDatabase:
    def make_database(self):
        database = ResultDatabase("test")
        database.add(make_record("a", accesses=100, footprint=50))
        database.add(make_record("b", accesses=50, footprint=100))
        database.add(make_record("c", accesses=200, footprint=200))
        database.add(make_record("d", accesses=10, footprint=10, oom=5))
        return database

    def test_best_and_worst_ignore_infeasible(self):
        database = self.make_database()
        assert database.best_by("accesses").configuration_id == "b"
        assert database.worst_by("accesses").configuration_id == "c"
        assert database.best_by("accesses", feasible_only=False).configuration_id == "d"

    def test_metric_range(self):
        database = self.make_database()
        assert database.metric_range("footprint") == (50, 200)

    def test_pareto_excludes_infeasible_and_dominated(self):
        database = self.make_database()
        front_ids = {record.configuration_id for record in database.pareto_records(["accesses", "footprint"])}
        assert front_ids == {"a", "b"}

    def test_pareto_can_include_infeasible_when_asked(self):
        database = self.make_database()
        front = database.pareto_records(["accesses", "footprint"], feasible_only=False)
        assert {record.configuration_id for record in front} == {"d"}

    def test_feasible_split(self):
        database = self.make_database()
        assert len(database.feasible_records()) == 3
        assert len(database.infeasible_records()) == 1

    def test_where_parameter(self, smoke_database):
        with_pools = smoke_database.where_parameter("num_dedicated_pools", 3)
        assert all(r.parameters["num_dedicated_pools"] == 3 for r in with_pools)
        assert with_pools

    def test_json_round_trip(self, tmp_path, smoke_database):
        path = tmp_path / "db.json"
        smoke_database.to_json(path)
        loaded = ResultDatabase.from_json(path)
        assert len(loaded) == len(smoke_database)
        assert loaded[0].metrics == smoke_database[0].metrics
        assert loaded[0].parameters == smoke_database[0].parameters

    def test_csv_export(self, tmp_path, smoke_database):
        path = tmp_path / "db.csv"
        rows = smoke_database.to_csv(path)
        lines = path.read_text().splitlines()
        assert rows == len(smoke_database)
        assert len(lines) == rows + 1  # header
        assert "accesses" in lines[0]

    def test_metric_table_contains_parameters(self, smoke_database):
        table = smoke_database.metric_table()
        assert "param_general_free_list" in table[0]

    def test_summary(self, smoke_database):
        summary = smoke_database.summary()
        assert summary["records"] == len(smoke_database)
        assert summary["pareto_count"] >= 1

    def test_empty_database_errors(self):
        database = ResultDatabase()
        with pytest.raises(ValueError):
            database.best_by("accesses")
        assert database.summary() == {"records": 0}

    def test_knee_record(self, smoke_database):
        knee = smoke_database.knee_record()
        assert knee in smoke_database.pareto_records()


class TestTradeoffAnalysis:
    def test_pareto_count_and_ranges(self, smoke_database):
        analysis = TradeoffAnalysis(smoke_database)
        assert analysis.pareto_count == len(smoke_database.pareto_records())
        tradeoff = analysis.metric_tradeoff("accesses")
        assert tradeoff.overall_min <= tradeoff.pareto_min
        assert tradeoff.pareto_max <= tradeoff.overall_max
        assert tradeoff.overall_range_factor >= tradeoff.pareto_gain_factor >= 1.0

    def test_percent_consistent_with_factor(self, smoke_database):
        tradeoff = TradeoffAnalysis(smoke_database).metric_tradeoff("footprint")
        expected = 100.0 * (1 - 1 / tradeoff.pareto_gain_factor)
        assert tradeoff.pareto_gain_percent == pytest.approx(expected)

    def test_summary_round_trip(self, smoke_database):
        summary = TradeoffAnalysis(smoke_database).summary()
        data = summary.as_dict()
        assert set(data["metrics"]) == set(metric_keys())
        assert data["pareto_count"] == summary.pareto_count

    def test_best_configuration_is_on_front(self, smoke_database):
        analysis = TradeoffAnalysis(smoke_database)
        best = analysis.best_configuration("energy_nj")
        assert best in analysis.pareto_records

    def test_paper_style_report_mentions_metrics(self, smoke_database):
        report = TradeoffAnalysis(smoke_database).paper_style_report()
        for key in metric_keys():
            assert key in report

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError):
            TradeoffAnalysis(ResultDatabase())

    def test_all_infeasible_rejected(self):
        database = ResultDatabase()
        database.add(make_record("x", 1, 1, oom=3))
        with pytest.raises(ValueError):
            TradeoffAnalysis(database)

    def test_compare_against_baseline(self, smoke_database):
        baseline = MetricSet(accesses=10**9, footprint=10**9, energy_nj=1e9, cycles=10**9)
        factor = compare_against_baseline(smoke_database, baseline, "accesses")
        assert factor > 1.0


class TestCustomWorkloadExploration:
    def test_fixed_size_workload_favours_dedicated_pools(self):
        trace = FixedSizesWorkload(sizes=[64], operations=400).generate(seed=2)
        engine = ExplorationEngine(smoke_parameter_space(), trace)
        database = engine.explore()
        best = database.best_by("accesses")
        assert best.parameters["num_dedicated_pools"] > 0
