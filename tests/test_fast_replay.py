"""Byte-identity of the compiled fast replay path against the legacy path.

The legacy event loop (``ProfilerOptions(fast_replay=False)``) is the
executable specification; the fast path must reproduce its
:class:`~repro.profiling.metrics.ProfileResult` *exactly* — every counter
of every pool, every level breakdown, every metric bit — across every
standard parameter space, for OOM-skipping traces, for ``fail_on_oom`` and
for the footprint-timeline mode.  The allocator object the replay leaves
behind must match too (owner map, live tables, free lists, freed sets),
because engines reuse and inspect it.
"""

import json

import pytest

from repro.core.configuration import configuration_from_point
from repro.core.factory import AllocatorFactory
from repro.core.space import STANDARD_SPACES
from repro.memhier.hierarchy import embedded_two_level
from repro.profiling.profiler import Profiler, ProfilerOptions
from repro.workloads.easyport import EasyportWorkload
from repro.workloads.synthetic import PhasedWorkload, UniformRandomWorkload
from repro.workloads.vtc import VTCWorkload

#: Points sampled per parameter space (each is profiled twice per mode).
POINTS_PER_SPACE = 4

WORKLOADS = {
    "easyport": lambda: EasyportWorkload(packets=120).generate(seed=7),
    "vtc": lambda: VTCWorkload(image_width=24, image_height=24).generate(seed=7),
    "uniform": lambda: UniformRandomWorkload(operations=400).generate(seed=7),
    "phased": lambda: PhasedWorkload().generate(seed=7),
}


@pytest.fixture(scope="module", params=sorted(WORKLOADS))
def workload_trace(request):
    return request.param, WORKLOADS[request.param]()


def result_bytes(result):
    return json.dumps(result.as_dict(), sort_keys=True, default=repr).encode()


def allocator_state(allocator):
    """Full observable allocator end state, as comparable plain data."""
    state = {
        "owner": sorted((a, p.name) for a, p in allocator._owner_of.items()),
        "dispatch": allocator.dispatch_accesses,
        "live_blocks": allocator.live_blocks,
    }
    for pool in allocator.pools:
        free_list = getattr(pool, "free_list", None)
        state[pool.name] = {
            "live": sorted(
                (a, b.size, b.requested_size, b.status.value, b.pool_name)
                for a, b in pool._live.items()
            ),
            "freed": sorted(pool._freed_addresses),
            "free_list": (
                [
                    (b.address, b.size, b.status.value, b.requested_size, b.pool_name)
                    for b in free_list.blocks()
                ]
                if free_list is not None
                else None
            ),
            "insertion_visits": (
                free_list.last_insertion_visits if free_list is not None else None
            ),
            "stats": pool.stats.snapshot(),
        }
    return json.dumps(state, sort_keys=True)


def run_both(trace, point, hierarchy=None, **option_kwargs):
    """Profile ``point`` with the fast and the legacy path; return both."""
    hierarchy = hierarchy or embedded_two_level()
    factory = AllocatorFactory(hierarchy)
    hot = trace.hot_sizes(top=8)
    configuration = configuration_from_point(
        point,
        hot_sizes=hot,
        scratchpad_module=hierarchy.fastest.name,
        main_module=hierarchy.background_module.name,
    )
    outcomes = []
    for fast in (True, False):
        built = factory.build(configuration)
        profiler = Profiler(
            built.mapping,
            options=ProfilerOptions(fast_replay=fast, **option_kwargs),
        )
        result = profiler.run(built.allocator, trace, "under-test")
        outcomes.append((result, built.allocator))
    return outcomes


class TestByteIdentityAcrossSpaces:
    @pytest.mark.parametrize("space_name", sorted(STANDARD_SPACES))
    def test_fast_path_matches_legacy(self, space_name, workload_trace):
        _name, trace = workload_trace
        space = STANDARD_SPACES[space_name]()
        for point in space.sample(POINTS_PER_SPACE, seed=11):
            (fast_result, fast_alloc), (legacy_result, legacy_alloc) = run_both(
                trace, point
            )
            assert result_bytes(fast_result) == result_bytes(legacy_result)
            assert allocator_state(fast_alloc) == allocator_state(legacy_alloc)


class TestByteIdentityUnderOOM:
    def tiny_hierarchy(self):
        # A scratchpad small enough that dedicated pools overflow and spill,
        # and a bounded main memory so even the fallback eventually OOMs.
        return embedded_two_level(scratchpad_size=2048, main_size=16384)

    def oom_point(self, space_name="default"):
        space = STANDARD_SPACES[space_name]()
        return space.sample(6, seed=2)

    def test_oom_skip_identical(self, workload_trace):
        _name, trace = workload_trace
        hierarchy = self.tiny_hierarchy()
        saw_oom = False
        for point in self.oom_point():
            (fast_result, fast_alloc), (legacy_result, legacy_alloc) = run_both(
                trace, point, hierarchy=hierarchy
            )
            assert result_bytes(fast_result) == result_bytes(legacy_result)
            assert allocator_state(fast_alloc) == allocator_state(legacy_alloc)
            oom = fast_result.per_pool["__profile__"]["oom_failures"]
            saw_oom = saw_oom or oom > 0
        assert saw_oom, "OOM scenario never triggered; shrink the hierarchy"

    def test_fail_on_oom_raises_identically(self):
        trace = EasyportWorkload(packets=400).generate(seed=7)
        hierarchy = embedded_two_level(scratchpad_size=1024, main_size=8192)
        point = self.oom_point()[0]
        errors = []
        for fast in (True, False):
            factory = AllocatorFactory(hierarchy)
            configuration = configuration_from_point(
                point,
                hot_sizes=trace.hot_sizes(top=8),
                scratchpad_module=hierarchy.fastest.name,
                main_module=hierarchy.background_module.name,
            )
            built = factory.build(configuration)
            profiler = Profiler(
                built.mapping,
                options=ProfilerOptions(fast_replay=fast, fail_on_oom=True),
            )
            with pytest.raises(Exception) as excinfo:
                profiler.run(built.allocator, trace, "oom")
            errors.append((type(excinfo.value).__name__, str(excinfo.value)))
        assert errors[0] == errors[1]


class TestByteIdentityTimeline:
    def test_footprint_timeline_identical(self, workload_trace):
        _name, trace = workload_trace
        space = STANDARD_SPACES["smoke"]()
        for point in space.sample(2, seed=5):
            (fast_result, _), (legacy_result, _) = run_both(
                trace, point, track_footprint_timeline=True
            )
            assert (
                fast_result.per_pool["__timeline__"]
                == legacy_result.per_pool["__timeline__"]
            )
            assert result_bytes(fast_result) == result_bytes(legacy_result)


class TestCollectUsesCachedLength:
    def test_operation_count_does_not_reiterate(self):
        trace = EasyportWorkload(packets=40).generate(seed=1)

        class CountingTrace(type(trace)):
            iterations = 0

            def __iter__(self):
                CountingTrace.iterations += 1
                return super().__iter__()

        counting = CountingTrace(events=trace.events, name=trace.name)
        point = STANDARD_SPACES["smoke"]().sample(1, seed=0)[0]
        hierarchy = embedded_two_level()
        factory = AllocatorFactory(hierarchy)
        configuration = configuration_from_point(
            point,
            hot_sizes=counting.hot_sizes(top=4),
            scratchpad_module=hierarchy.fastest.name,
            main_module=hierarchy.background_module.name,
        )
        built = factory.build(configuration)
        profiler = Profiler(
            built.mapping, options=ProfilerOptions(fast_replay=False)
        )
        CountingTrace.iterations = 0
        result = profiler.run(built.allocator, counting, "count")
        # One pass for the replay itself; _collect must not re-iterate.
        assert CountingTrace.iterations == 1
        assert result.operation_count == len(counting)

    def test_fast_path_never_iterates_events(self):
        trace = EasyportWorkload(packets=40).generate(seed=1)
        compiled = trace.compiled()
        from repro.profiling.tracer import AllocationTrace

        lazy = AllocationTrace.from_compiled(compiled)
        point = STANDARD_SPACES["smoke"]().sample(1, seed=0)[0]
        hierarchy = embedded_two_level()
        factory = AllocatorFactory(hierarchy)
        configuration = configuration_from_point(
            point,
            hot_sizes=trace.hot_sizes(top=4),
            scratchpad_module=hierarchy.fastest.name,
            main_module=hierarchy.background_module.name,
        )
        built = factory.build(configuration)
        result = Profiler(built.mapping).run(built.allocator, lazy, "lazy")
        assert lazy._events is None  # replay + collect stayed columnar
        assert result.operation_count == len(trace)


class TestLiveRebindingFallback:
    """Malformed streams that re-allocate a live id take the event loop.

    Static slot resolution cannot express the legacy semantics for such
    streams (the legacy loop rebinds the id only when the allocation
    succeeds at runtime), so the compiled form flags them and the profiler
    falls back — keeping byte-identity even for traces validate() rejects.
    """

    def malformed_setup(self):
        from repro.allocator.composed import ComposedAllocator
        from repro.allocator.pool import FixedSizePool
        from repro.memhier.mapping import PoolMapping
        from repro.profiling.events import alloc, free
        from repro.profiling.tracer import AllocationTrace

        hierarchy = embedded_two_level()
        mapping = PoolMapping(hierarchy)
        mapping.place_pool("fixed", "main_memory", reserved_bytes=128)
        pool = FixedSizePool(
            "fixed",
            block_size=64,
            address_space=mapping.address_space_for("fixed"),
            chunk_blocks=1,
        )
        allocator = ComposedAllocator([pool])
        # id 1 is re-allocated while live; the second allocation OOMs (the
        # 128-byte reservation fits one 72-byte gross block only), so the
        # legacy loop keeps the first binding and the FREE releases it.
        trace = AllocationTrace(
            [alloc(1, 64, 0), alloc(1, 64, 1), free(1, 2), alloc(2, 64, 3)],
            name="malformed",
        )
        return allocator, mapping, trace

    def test_flag_set_on_live_rebinding(self):
        _allocator, _mapping, trace = self.malformed_setup()
        assert trace.compiled().has_live_rebinding

    def test_flag_clear_on_wellformed_reuse(self):
        from repro.profiling.events import alloc, free
        from repro.profiling.tracer import AllocationTrace

        trace = AllocationTrace(
            [alloc(1, 8, 0), free(1, 1), alloc(1, 8, 2), free(1, 3)]
        )
        assert not trace.compiled().has_live_rebinding

    def test_malformed_stream_byte_identical(self):
        results = []
        for fast in (True, False):
            allocator, mapping, trace = self.malformed_setup()
            profiler = Profiler(
                mapping, options=ProfilerOptions(fast_replay=fast)
            )
            results.append(profiler.run(allocator, trace, "malformed"))
        assert result_bytes(results[0]) == result_bytes(results[1])
        # The legacy semantics: one OOM, two successful allocs, one free.
        profile = results[0].per_pool["__profile__"]
        assert profile["oom_failures"] == 1
        assert results[0].per_pool["fixed"]["alloc_ops"] == 2
        assert results[0].per_pool["fixed"]["free_ops"] == 1
