"""Unit tests for fit policies (repro.allocator.fit)."""

import pytest

from repro.allocator.blocks import Block
from repro.allocator.errors import ConfigurationError
from repro.allocator.fit import (
    FIT_POLICIES,
    BestFit,
    ExactFit,
    FirstFit,
    NextFit,
    WorstFit,
    fit_policy_names,
    make_fit_policy,
)
from repro.allocator.freelist import FIFOFreeList, SizeOrderedFreeList


def make_list(sizes):
    """FIFO free list whose blocks have the given sizes, in order."""
    free_list = FIFOFreeList()
    address = 0
    for size in sizes:
        free_list.push(Block(address=address, size=size))
        address += size
    return free_list


class TestFirstFit:
    def test_takes_first_large_enough(self):
        free_list = make_list([16, 64, 128])
        result = FirstFit().select(free_list, 32)
        assert result.found
        assert result.block.size == 64
        assert result.visits == 2

    def test_no_fit(self):
        free_list = make_list([16, 32])
        result = FirstFit().select(free_list, 64)
        assert not result.found
        assert result.visits == 2

    def test_empty_list(self):
        result = FirstFit().select(FIFOFreeList(), 8)
        assert not result.found
        assert result.visits == 0


class TestNextFit:
    def test_resumes_after_previous_position(self):
        free_list = make_list([64, 64, 64])
        policy = NextFit()
        first = policy.select(free_list, 32)
        second = policy.select(free_list, 32)
        assert first.block is not second.block

    def test_wraps_around(self):
        free_list = make_list([64, 16, 16])
        policy = NextFit()
        policy.select(free_list, 32)  # takes index 0, rover at 1
        result = policy.select(free_list, 32)  # wraps back to index 0
        assert result.found
        assert result.block.size == 64

    def test_reset(self):
        free_list = make_list([64, 64])
        policy = NextFit()
        first = policy.select(free_list, 32)
        policy.reset()
        second = policy.select(free_list, 32)
        assert first.block is second.block


class TestBestFit:
    def test_selects_smallest_adequate(self):
        free_list = make_list([128, 48, 64])
        result = BestFit().select(free_list, 40)
        assert result.block.size == 48
        assert result.visits == 3

    def test_early_exit_on_exact_match(self):
        free_list = make_list([48, 128, 64])
        result = BestFit().select(free_list, 48)
        assert result.block.size == 48
        assert result.visits == 1

    def test_short_circuits_on_size_ordered_list(self):
        free_list = SizeOrderedFreeList()
        for size in [16, 48, 64, 128]:
            free_list.push(Block(address=size * 10, size=size))
        result = BestFit().select(free_list, 40)
        assert result.block.size == 48
        assert result.visits == 2  # 16 then 48, then stop


class TestWorstFit:
    def test_selects_largest(self):
        free_list = make_list([48, 128, 64])
        result = WorstFit().select(free_list, 40)
        assert result.block.size == 128
        assert result.visits == 3

    def test_always_scans_everything(self):
        free_list = make_list([100, 100, 100, 100])
        result = WorstFit().select(free_list, 10)
        assert result.visits == 4


class TestExactFit:
    def test_only_exact_match(self):
        free_list = make_list([48, 64])
        assert ExactFit().select(free_list, 64).found
        assert not ExactFit().select(free_list, 60).found

    def test_visits_until_match(self):
        free_list = make_list([16, 32, 64])
        result = ExactFit().select(free_list, 64)
        assert result.visits == 3


class TestRegistry:
    def test_all_policies_constructible(self):
        for name in fit_policy_names():
            assert make_fit_policy(name).policy_name == name

    def test_registry_complete(self):
        assert set(fit_policy_names()) == set(FIT_POLICIES)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_fit_policy("no_such_fit")

    @pytest.mark.parametrize("name", sorted(FIT_POLICIES))
    def test_every_policy_finds_obvious_fit(self, name):
        free_list = make_list([256])
        result = make_fit_policy(name).select(free_list, 256)
        assert result.found
        assert result.block.size == 256
