"""Unit tests for free-list organisations (repro.allocator.freelist)."""

import pytest

from repro.allocator.blocks import Block
from repro.allocator.errors import ConfigurationError
from repro.allocator.freelist import (
    FREE_LIST_POLICIES,
    AddressOrderedFreeList,
    FIFOFreeList,
    LIFOFreeList,
    SizeOrderedFreeList,
    free_list_policy_names,
    make_free_list,
    validate_free_list,
)


def blocks_of(sizes_and_addresses):
    return [Block(address=addr, size=size) for addr, size in sizes_and_addresses]


class TestLIFO:
    def test_most_recent_first(self):
        free_list = LIFOFreeList()
        first, second = blocks_of([(0, 32), (32, 32)])
        free_list.push(first)
        free_list.push(second)
        assert free_list.blocks()[0] is second

    def test_insertion_cost_is_constant(self):
        free_list = LIFOFreeList()
        for index in range(10):
            free_list.push(Block(address=index * 32, size=32))
            assert free_list.last_insertion_visits == 1


class TestFIFO:
    def test_oldest_first(self):
        free_list = FIFOFreeList()
        first, second = blocks_of([(0, 32), (32, 32)])
        free_list.push(first)
        free_list.push(second)
        assert free_list.blocks()[0] is first


class TestAddressOrdered:
    def test_sorted_by_address(self):
        free_list = AddressOrderedFreeList()
        for address in [96, 0, 64, 32]:
            free_list.push(Block(address=address, size=32))
        addresses = [block.address for block in free_list.blocks()]
        assert addresses == sorted(addresses)

    def test_insertion_cost_grows_with_position(self):
        free_list = AddressOrderedFreeList()
        for address in [0, 32, 64]:
            free_list.push(Block(address=address, size=32))
        free_list.push(Block(address=128, size=32))
        assert free_list.last_insertion_visits == 3

    def test_find_adjacent(self):
        free_list = AddressOrderedFreeList()
        low = Block(address=0, size=32)
        high = Block(address=64, size=32)
        free_list.push(low)
        free_list.push(high)
        middle = Block(address=32, size=32)
        predecessor, successor = free_list.find_adjacent(middle)
        assert predecessor is low
        assert successor is high

    def test_find_adjacent_non_contiguous(self):
        free_list = AddressOrderedFreeList()
        free_list.push(Block(address=0, size=16))  # ends at 16, not adjacent
        free_list.push(Block(address=100, size=16))
        middle = Block(address=32, size=32)
        predecessor, successor = free_list.find_adjacent(middle)
        assert predecessor is None
        assert successor is None


class TestSizeOrdered:
    def test_sorted_by_size(self):
        free_list = SizeOrderedFreeList()
        for size in [128, 16, 64, 32]:
            free_list.push(Block(address=size * 10, size=size))
        sizes = [block.size for block in free_list.blocks()]
        assert sizes == sorted(sizes)

    def test_ties_broken_by_address(self):
        free_list = SizeOrderedFreeList()
        second = Block(address=200, size=32)
        first = Block(address=100, size=32)
        free_list.push(second)
        free_list.push(first)
        assert free_list.blocks()[0] is first


class TestCommonOperations:
    @pytest.mark.parametrize("policy", sorted(FREE_LIST_POLICIES))
    def test_push_remove_len(self, policy):
        free_list = make_free_list(policy)
        block = Block(address=0, size=32)
        other = Block(address=32, size=64)
        free_list.push(block)
        free_list.push(other)
        assert len(free_list) == 2
        assert block in free_list
        free_list.remove(block)
        assert len(free_list) == 1
        assert block not in free_list

    @pytest.mark.parametrize("policy", sorted(FREE_LIST_POLICIES))
    def test_pop_front_and_clear(self, policy):
        free_list = make_free_list(policy)
        free_list.push(Block(address=0, size=32))
        free_list.push(Block(address=32, size=32))
        popped = free_list.pop_front()
        assert popped is free_list.blocks()[0] or popped not in free_list
        free_list.clear()
        assert len(free_list) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            LIFOFreeList().pop_front()

    def test_remove_missing_raises(self):
        free_list = LIFOFreeList()
        with pytest.raises(ValueError):
            free_list.remove(Block(address=0, size=32))

    def test_total_free_bytes_and_largest(self):
        free_list = FIFOFreeList()
        assert free_list.largest_block() is None
        free_list.push(Block(address=0, size=32))
        free_list.push(Block(address=32, size=128))
        assert free_list.total_free_bytes == 160
        assert free_list.largest_block().size == 128

    def test_validate_free_list_detects_allocated(self):
        block = Block(address=0, size=32)
        block.mark_allocated(10)
        with pytest.raises(AssertionError):
            validate_free_list([block])

    def test_validate_free_list_detects_duplicates(self):
        block = Block(address=0, size=32)
        with pytest.raises(AssertionError):
            validate_free_list([block, block])


class TestRegistry:
    def test_all_policies_constructible(self):
        for name in free_list_policy_names():
            assert make_free_list(name).policy_name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_free_list("no_such_policy")
