"""Unit tests for the simulated backing store (repro.allocator.heap)."""

import pytest

from repro.allocator.errors import OutOfMemoryError
from repro.allocator.heap import (
    UNBOUNDED_POOL_STRIDE,
    AddressSpaceAllocator,
    PoolAddressSpace,
)


class TestPoolAddressSpace:
    def test_starts_empty(self):
        space = PoolAddressSpace(base=0, capacity=1024)
        assert space.used == 0
        assert space.brk_address == 0

    def test_grow_rounds_to_chunks(self):
        space = PoolAddressSpace(base=0, capacity=None, chunk_size=64)
        grown = space.grow(10)
        assert grown.size == 64
        assert space.used == 64

    def test_grow_multiple_chunks(self):
        space = PoolAddressSpace(base=0, capacity=None, chunk_size=64)
        grown = space.grow(100)
        assert grown.size == 128

    def test_grow_exact(self):
        space = PoolAddressSpace(base=0, capacity=None, chunk_size=64)
        grown = space.grow_exact(10)
        assert grown.size == 10
        assert space.used == 10

    def test_grow_respects_capacity(self):
        space = PoolAddressSpace(base=0, capacity=100, chunk_size=64)
        space.grow(64)
        with pytest.raises(OutOfMemoryError):
            space.grow(64)

    def test_grow_falls_back_to_exact_near_capacity(self):
        space = PoolAddressSpace(base=0, capacity=100, chunk_size=64)
        space.grow(64)
        # 36 bytes remain: a chunked grow would need 64, but the exact
        # request still fits.
        grown = space.grow(30)
        assert grown.size == 30

    def test_base_offsets_addresses(self):
        space = PoolAddressSpace(base=1000, capacity=None, chunk_size=16)
        grown = space.grow(16)
        assert grown.start == 1000
        assert space.brk_address == 1016

    def test_contains(self):
        space = PoolAddressSpace(base=100, capacity=None, chunk_size=16)
        space.grow(16)
        assert space.contains(100)
        assert space.contains(115)
        assert not space.contains(116)
        assert not space.contains(99)

    def test_remaining(self):
        space = PoolAddressSpace(base=0, capacity=128, chunk_size=16)
        assert space.remaining() == 128
        space.grow(16)
        assert space.remaining() == 112
        unbounded = PoolAddressSpace(base=0, capacity=None)
        assert unbounded.remaining() is None

    def test_reset(self):
        space = PoolAddressSpace(base=0, capacity=None, chunk_size=16)
        space.grow(16)
        space.reset()
        assert space.used == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PoolAddressSpace(base=-1)
        with pytest.raises(ValueError):
            PoolAddressSpace(chunk_size=0)
        with pytest.raises(ValueError):
            PoolAddressSpace().grow(0)


class TestAddressSpaceAllocator:
    def test_reserves_disjoint_ranges(self):
        carver = AddressSpaceAllocator(1000)
        base_a, cap_a = carver.reserve("a", 400)
        base_b, cap_b = carver.reserve("b", 400)
        assert base_a == 0 and cap_a == 400
        assert base_b == 400 and cap_b == 400
        assert carver.remaining() == 200

    def test_reserve_rest_of_module(self):
        carver = AddressSpaceAllocator(1000)
        carver.reserve("a", 400)
        base_b, cap_b = carver.reserve("b", None)
        assert base_b == 400
        assert cap_b == 600
        assert carver.remaining() == 0

    def test_over_reservation_rejected(self):
        carver = AddressSpaceAllocator(100)
        with pytest.raises(OutOfMemoryError):
            carver.reserve("a", 200)

    def test_duplicate_pool_rejected(self):
        carver = AddressSpaceAllocator(100)
        carver.reserve("a", 10)
        with pytest.raises(ValueError):
            carver.reserve("a", 10)

    def test_unbounded_module_gives_disjoint_strides(self):
        carver = AddressSpaceAllocator(None)
        base_a, cap_a = carver.reserve("a", None)
        base_b, cap_b = carver.reserve("b", None)
        assert cap_a is None and cap_b is None
        assert base_b - base_a == UNBOUNDED_POOL_STRIDE

    def test_base_offset(self):
        carver = AddressSpaceAllocator(100, base_offset=5000)
        base, cap = carver.reserve("a", 50)
        assert base == 5000
        assert cap == 50
        base_b, cap_b = carver.reserve("b", None)
        assert base_b == 5050
        assert cap_b == 50
