"""Integration tests: the full explore → Pareto → report/export pipeline."""

import pytest

from repro.core.exploration import ExplorationEngine, ExplorationSettings
from repro.core.reporting import exploration_report
from repro.core.results import ResultDatabase
from repro.core.space import smoke_parameter_space
from repro.core.tradeoff import TradeoffAnalysis
from repro.gui.report import export_artifacts
from repro.memhier.hierarchy import embedded_three_level, embedded_two_level
from repro.profiling.logformat import write_log
from repro.profiling.parser import parse_log
from repro.profiling.profiler import Profiler
from repro.workloads.easyport import EasyportWorkload
from repro.workloads.vtc import VTCWorkload


@pytest.fixture(scope="module")
def easyport_trace():
    return EasyportWorkload(packets=250).generate(seed=11)


@pytest.fixture(scope="module")
def easyport_database(easyport_trace):
    return ExplorationEngine(smoke_parameter_space(), easyport_trace).explore()


class TestEndToEndPipeline:
    def test_every_configuration_profiled_without_leaks(self, easyport_trace):
        engine = ExplorationEngine(smoke_parameter_space(), easyport_trace)
        for index, point in enumerate(smoke_parameter_space().points()):
            configuration = engine.configuration_for(point, label=f"it{index}")
            built = engine.factory.build(configuration)
            profiler = Profiler(built.mapping)
            result = profiler.run(built.allocator, easyport_trace)
            assert result.leaked_blocks == 0

    def test_full_report_and_exports(self, tmp_path, easyport_database):
        report = exploration_report(easyport_database, title="integration")
        assert "Pareto-optimal" in report
        paths = export_artifacts(easyport_database, tmp_path / "out")
        for path in paths.values():
            assert path.exists() and path.stat().st_size > 0

    def test_database_json_round_trip_preserves_pareto(self, tmp_path, easyport_database):
        path = tmp_path / "db.json"
        easyport_database.to_json(path)
        loaded = ResultDatabase.from_json(path)
        original_front = {r.configuration_id for r in easyport_database.pareto_records()}
        loaded_front = {r.configuration_id for r in loaded.pareto_records()}
        assert original_front == loaded_front

    def test_profiling_log_pipeline(self, tmp_path, easyport_trace):
        """Explore -> write raw profiling log -> parse -> same Pareto front."""
        engine = ExplorationEngine(smoke_parameter_space(), easyport_trace)
        results = []
        for index, point in enumerate(smoke_parameter_space().points()):
            configuration = engine.configuration_for(point, label=f"log{index}")
            built = engine.factory.build(configuration)
            results.append(Profiler(built.mapping).run(built.allocator, easyport_trace,
                                                       configuration.configuration_id))
        log_path = tmp_path / "profiling.log"
        write_log(log_path, results)
        parsed = parse_log(log_path)
        assert len(parsed.results) == len(results)
        for result in results:
            restored = parsed.result_for(result.configuration_id)
            assert restored.totals.accesses == result.totals.accesses
            assert restored.totals.footprint == result.totals.footprint

    def test_paper_shape_dedicated_scratchpad_pools_win(self, easyport_database):
        """The headline qualitative result: configurations with dedicated
        pools mapped onto the scratchpad dominate the access/energy end of
        the trade-off, while the minimal-footprint end uses fewer pools."""
        analysis = TradeoffAnalysis(easyport_database)
        best_accesses = analysis.best_configuration("accesses")
        best_energy = analysis.best_configuration("energy_nj")
        assert best_accesses.parameters["num_dedicated_pools"] > 0
        assert best_energy.parameters["dedicated_pool_placement"] == "scratchpad"
        best_footprint = analysis.best_configuration("footprint")
        assert (
            best_footprint.parameters["num_dedicated_pools"]
            <= best_accesses.parameters["num_dedicated_pools"]
        )

    def test_three_level_hierarchy_exploration(self, easyport_trace):
        hierarchy = embedded_three_level()
        settings = ExplorationSettings(sample=4)
        engine = ExplorationEngine(
            smoke_parameter_space(), easyport_trace, hierarchy=hierarchy, settings=settings
        )
        database = engine.explore()
        assert len(database) == 4
        assert all(record.metrics.accesses > 0 for record in database)

    def test_vtc_pipeline(self):
        trace = VTCWorkload(image_width=64, image_height=64).generate(seed=12)
        engine = ExplorationEngine(smoke_parameter_space(), trace)
        database = engine.explore()
        analysis = TradeoffAnalysis(database)
        assert analysis.pareto_count >= 1
        assert analysis.metric_tradeoff("accesses").overall_range_factor > 1.0

    def test_pareto_front_respects_feasibility(self, easyport_trace):
        # Force an infeasible configuration by using a tiny main memory.
        hierarchy = embedded_two_level(scratchpad_size=4096, main_size=16384)
        engine = ExplorationEngine(smoke_parameter_space(), easyport_trace, hierarchy=hierarchy)
        database = engine.explore()
        front = database.pareto_records()
        assert all(record.feasible for record in front)
