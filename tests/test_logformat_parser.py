"""Unit tests for the profiling-log writer and the fast parser."""

import pytest

from repro.profiling.logformat import (
    ProfilingLogWriter,
    format_result_line,
    log_to_string,
    write_log,
)
from repro.profiling.metrics import LevelMetrics, MetricSet, ProfileResult
from repro.profiling.parser import (
    LogParseError,
    ProfilingLogParser,
    iter_result_metrics,
    parse_log,
    parse_log_text,
)
from repro.profiling.tracer import AllocationTrace
from repro.profiling.events import alloc, free


def make_result(config_id="cfg1", accesses=1000, footprint=2048, energy=12.5, cycles=9000):
    result = ProfileResult(configuration_id=config_id, trace_name="trace")
    result.totals = MetricSet(
        accesses=accesses, footprint=footprint, energy_nj=energy, cycles=cycles
    )
    result.per_level["l1_scratchpad"] = LevelMetrics(
        "l1_scratchpad", reads=100, writes=50, footprint=512, energy_nj=1.5
    )
    result.per_level["main_memory"] = LevelMetrics(
        "main_memory", reads=400, writes=450, footprint=1536, energy_nj=11.0
    )
    result.per_pool["hot"] = {"module": "l1_scratchpad", "accesses": 150, "peak_footprint": 512}
    result.per_pool["general"] = {"module": "main_memory", "accesses": 850, "peak_footprint": 1536}
    return result


def make_trace(events=10):
    trace = AllocationTrace(name="trace")
    for i in range(events):
        trace.append(alloc(i, 64, timestamp=i))
    for i in range(events):
        trace.append(free(i, timestamp=events + i))
    return trace


class TestWriter:
    def test_result_line_format(self):
        line = format_result_line(make_result())
        fields = line.split("|")
        assert fields[0] == "R"
        assert fields[1] == "cfg1"
        assert int(fields[3]) == 1000

    def test_log_to_string_contains_all_record_types(self):
        text = log_to_string([make_result()], trace=make_trace(), include_events=True)
        prefixes = {line.split("|")[0] for line in text.splitlines() if "|" in line}
        assert prefixes == {"R", "L", "P", "E"}

    def test_event_lines_optional(self):
        text = log_to_string([make_result()], trace=make_trace(), include_events=False)
        assert not any(line.startswith("E|") for line in text.splitlines())

    def test_write_log_to_file(self, tmp_path):
        path = tmp_path / "profile.log"
        lines = write_log(path, [make_result(), make_result("cfg2")])
        assert path.exists()
        assert lines == len(path.read_text().splitlines())

    def test_writer_counts_lines(self, tmp_path):
        path = tmp_path / "profile.log"
        writer = ProfilingLogWriter.open(path)
        writer.comment("hello")
        writer.write_result(make_result())
        writer.close()
        assert writer.lines_written >= 5


class TestParser:
    def test_round_trip_totals(self):
        original = make_result()
        parsed = parse_log_text(log_to_string([original]))
        restored = parsed.result_for("cfg1")
        assert restored.totals.accesses == original.totals.accesses
        assert restored.totals.footprint == original.totals.footprint
        assert restored.totals.energy_nj == pytest.approx(original.totals.energy_nj)
        assert restored.totals.cycles == original.totals.cycles

    def test_round_trip_levels_and_pools(self):
        parsed = parse_log_text(log_to_string([make_result()]))
        restored = parsed.result_for("cfg1")
        assert restored.per_level["main_memory"].reads == 400
        assert restored.per_pool["hot"]["module"] == "l1_scratchpad"

    def test_multiple_configurations(self):
        results = [make_result(f"cfg{i}", accesses=i * 100) for i in range(1, 6)]
        parsed = parse_log_text(log_to_string(results))
        assert parsed.configuration_ids() == [f"cfg{i}" for i in range(1, 6)]
        table = parsed.metric_table()
        assert len(table) == 5

    def test_event_lines_counted_not_stored(self):
        text = log_to_string([make_result()], trace=make_trace(100), include_events=True)
        parsed = parse_log_text(text)
        assert parsed.event_lines == 200

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\n" + log_to_string([make_result()])
        parsed = parse_log_text(text)
        assert len(parsed.results) == 1

    def test_malformed_lines_skipped_by_default(self):
        text = log_to_string([make_result()]) + "R|broken\nX|who|knows\n"
        parsed = parse_log_text(text)
        assert parsed.skipped_lines == 2
        assert len(parsed.results) == 1

    def test_strict_mode_raises(self):
        # The malformed line must not be the last one: a torn final line is
        # tolerated (see TestTornTail), an interior one is a real error.
        text = "R|only|three|fields\n# trailing comment\n"
        with pytest.raises(LogParseError):
            parse_log_text(text, strict=True)

    def test_level_for_unknown_config_rejected_in_strict_mode(self):
        text = "L|ghost|main_memory|1|2|3|4.0\n# trailing comment\n"
        with pytest.raises(LogParseError):
            parse_log_text(text, strict=True)

    def test_parse_path_and_iter_metrics(self, tmp_path):
        path = tmp_path / "profile.log"
        results = [make_result(f"cfg{i}", accesses=i) for i in range(3)]
        write_log(path, results)
        parsed = parse_log(path)
        assert len(parsed.results) == 3
        streamed = dict(iter_result_metrics(path))
        assert streamed["cfg2"].accesses == 2

    def test_keep_events_attaches_counts(self):
        text = log_to_string([make_result()], trace=make_trace(5), include_events=True)
        parsed = ProfilingLogParser(keep_events=True).parse_string(text)
        assert parsed.result_for("cfg1").per_pool["__events__"]["count"] == 10


class TestTornTail:
    """Round-trip gaps surfaced by streaming ingestion: a log captured while
    a writer is mid-line (or after a crash) must still parse."""

    def truncated_log(self):
        # The last line is a P record (event echo off); chop it mid-field,
        # as a torn write would.  (A torn E line never errors at all: the
        # parser counts event lines without validating their fields.)
        text = log_to_string([make_result()])
        return text.rstrip("\n")[:-4]

    def test_truncated_final_line_skipped_with_counter(self):
        parsed = parse_log_text(self.truncated_log())
        assert parsed.truncated_tail == 1
        assert parsed.skipped_lines == 1
        assert len(parsed.results) == 1

    def test_truncated_final_line_tolerated_in_strict_mode(self):
        parsed = parse_log_text(self.truncated_log(), strict=True)
        assert parsed.truncated_tail == 1

    def test_truncated_result_line_tolerated(self):
        text = log_to_string([make_result()]) + "R|cfg2|trace|12"
        parsed = parse_log_text(text, strict=True)
        assert parsed.truncated_tail == 1
        assert list(parsed.results) == ["cfg1"]

    def test_intact_log_reports_no_tail(self):
        text = log_to_string([make_result()], trace=make_trace(5), include_events=True)
        parsed = parse_log_text(text, strict=True)
        assert parsed.truncated_tail == 0
        assert parsed.skipped_lines == 0


class TestCommentInterleaving:
    """Comments interleaved *between* records of a log (progress markers a
    long-running writer emits) must be transparent to the parser."""

    def test_comments_between_every_record(self):
        text = log_to_string([make_result()], trace=make_trace(5), include_events=True)
        interleaved = "".join(f"# mark\n{line}\n" for line in text.splitlines())
        parsed = parse_log_text(interleaved, strict=True)
        assert len(parsed.results) == 1
        assert parsed.event_lines == 10
        assert parsed.skipped_lines == 0

    def test_comment_as_final_line_is_not_a_torn_tail(self):
        text = log_to_string([make_result()]) + "# writer still running\n"
        parsed = parse_log_text(text, strict=True)
        assert parsed.truncated_tail == 0
