"""Unit tests for the memory-hierarchy substrate (repro.memhier)."""

import pytest

from repro.allocator.composed import ComposedAllocator
from repro.allocator.errors import PoolCapacityError
from repro.allocator.pool import FixedSizePool, GeneralPool
from repro.memhier.access import breakdown_accesses, footprint_by_level
from repro.memhier.energy import EnergyModel
from repro.memhier.hierarchy import (
    MemoryHierarchy,
    embedded_three_level,
    embedded_two_level,
    flat_main_memory,
)
from repro.memhier.mapping import PoolMapping, PoolPlacement
from repro.memhier.module import (
    MemoryModule,
    main_memory,
    module_from_preset,
    onchip_sram,
    scratchpad,
)


class TestMemoryModule:
    def test_energy_for(self):
        module = MemoryModule("m", 1024, read_energy_nj=1.0, write_energy_nj=2.0, latency_cycles=5)
        assert module.energy_for(10, 5) == pytest.approx(10 * 1.0 + 5 * 2.0)

    def test_cycles_for(self):
        module = MemoryModule("m", 1024, 1.0, 2.0, 5)
        assert module.cycles_for(7) == 35

    def test_unbounded_module(self):
        module = MemoryModule("m", None, 1.0, 1.0, 1)
        assert not module.is_bounded

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MemoryModule("", 10, 1, 1, 1)
        with pytest.raises(ValueError):
            MemoryModule("m", 0, 1, 1, 1)
        with pytest.raises(ValueError):
            MemoryModule("m", 10, -1, 1, 1)
        with pytest.raises(ValueError):
            MemoryModule("m", 10, 1, 1, 0)
        with pytest.raises(ValueError):
            MemoryModule("m", 10, 1, 1, 1).energy_for(-1, 0)

    def test_presets_ordering(self):
        l1 = scratchpad()
        l2 = onchip_sram()
        dram = main_memory()
        assert l1.read_energy_nj < l2.read_energy_nj < dram.read_energy_nj
        assert l1.latency_cycles < l2.latency_cycles < dram.latency_cycles

    def test_module_from_preset(self):
        module = module_from_preset("x", "sram", 2048)
        assert module.kind == "sram"
        assert module.size == 2048
        with pytest.raises(ValueError):
            module_from_preset("x", "flash", 2048)


class TestMemoryHierarchy:
    def test_lookup_and_order(self):
        hierarchy = embedded_two_level()
        assert hierarchy.fastest.name == "l1_scratchpad"
        assert hierarchy.background_module.name == "main_memory"
        assert "l1_scratchpad" in hierarchy
        assert len(hierarchy) == 2

    def test_unknown_module(self):
        hierarchy = embedded_two_level()
        with pytest.raises(KeyError):
            hierarchy.module("l3_cache")

    def test_duplicate_names_rejected(self):
        module = scratchpad()
        with pytest.raises(ValueError):
            MemoryHierarchy([module, module])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([])

    def test_total_capacity(self):
        hierarchy = embedded_two_level(scratchpad_size=1024, main_size=4096)
        assert hierarchy.total_capacity() == 5120
        assert flat_main_memory(main_size=None).total_capacity() is None

    def test_three_level(self):
        hierarchy = embedded_three_level()
        assert hierarchy.module_names() == ["l1_scratchpad", "l2_sram", "main_memory"]

    def test_describe_mentions_all_modules(self):
        text = embedded_three_level().describe()
        for name in ("l1_scratchpad", "l2_sram", "main_memory"):
            assert name in text


class TestPoolMapping:
    def test_placement_and_lookup(self):
        hierarchy = embedded_two_level()
        mapping = PoolMapping(hierarchy)
        mapping.place_pool("hot", "l1_scratchpad", 1024)
        mapping.place_pool("cold", "main_memory")
        assert mapping.module_of("hot").name == "l1_scratchpad"
        assert mapping.module_of("cold").name == "main_memory"

    def test_unplaced_pool_defaults_to_background(self):
        mapping = PoolMapping(embedded_two_level())
        assert mapping.module_of("anything").name == "main_memory"

    def test_address_spaces_are_disjoint_across_modules(self):
        mapping = PoolMapping(embedded_two_level())
        mapping.place_pool("hot", "l1_scratchpad", 1024)
        mapping.place_pool("cold", "main_memory", 1024)
        hot_space = mapping.address_space_for("hot")
        cold_space = mapping.address_space_for("cold")
        assert hot_space.base != cold_space.base
        hot_range = hot_space.grow(1024)
        cold_range = cold_space.grow(1024)
        assert not hot_range.overlaps(cold_range)

    def test_capacity_enforced(self):
        mapping = PoolMapping(embedded_two_level(scratchpad_size=1024))
        with pytest.raises(PoolCapacityError):
            mapping.place_pool("huge", "l1_scratchpad", 2048)

    def test_over_reservation_across_pools(self):
        mapping = PoolMapping(embedded_two_level(scratchpad_size=1024))
        mapping.place_pool("a", "l1_scratchpad", 600)
        mapping.place_pool("b", "l1_scratchpad", 600)
        with pytest.raises(PoolCapacityError):
            mapping.validate_reservations()

    def test_duplicate_placement_rejected(self):
        mapping = PoolMapping(embedded_two_level())
        mapping.place_pool("a", "main_memory")
        with pytest.raises(ValueError):
            mapping.place(PoolPlacement("a", "main_memory"))

    def test_unknown_module_rejected(self):
        mapping = PoolMapping(embedded_two_level())
        with pytest.raises(KeyError):
            mapping.place_pool("a", "l9_cache")

    def test_pools_on(self):
        mapping = PoolMapping(embedded_two_level())
        mapping.place_pool("a", "l1_scratchpad", 128)
        mapping.place_pool("b", "main_memory")
        assert mapping.pools_on("l1_scratchpad") == ["a"]

    def test_describe(self):
        mapping = PoolMapping(embedded_two_level())
        mapping.place_pool("a", "l1_scratchpad", 128)
        assert "l1_scratchpad" in mapping.describe()


class TestAccessBreakdown:
    def make_setup(self):
        hierarchy = embedded_two_level()
        mapping = PoolMapping(hierarchy)
        mapping.place_pool("hot", "l1_scratchpad", 8192)
        mapping.place_pool("general", "main_memory")
        hot = FixedSizePool("hot", 64, address_space=mapping.address_space_for("hot"))
        general = GeneralPool("general", address_space=mapping.address_space_for("general"))
        allocator = ComposedAllocator([hot, general])
        return allocator, mapping

    def test_accesses_attributed_to_levels(self):
        allocator, mapping = self.make_setup()
        a = allocator.malloc(64)
        b = allocator.malloc(300)
        allocator.free(a)
        allocator.free(b)
        breakdown = breakdown_accesses(allocator, mapping)
        assert breakdown.level("l1_scratchpad").total > 0
        assert breakdown.level("main_memory").total > 0
        pool_total = allocator.stats.total_accesses
        assert breakdown.total == pool_total + allocator.dispatch_accesses

    def test_footprint_by_level(self):
        allocator, mapping = self.make_setup()
        allocator.malloc(64)
        allocator.malloc(300)
        footprints = footprint_by_level(allocator, mapping)
        assert footprints["l1_scratchpad"] > 0
        assert footprints["main_memory"] > 0


class TestEnergyModel:
    def test_energy_prefers_scratchpad(self):
        hierarchy = embedded_two_level()
        model = EnergyModel(hierarchy)
        allocator_hot, mapping_hot = self._setup(hierarchy, "l1_scratchpad")
        allocator_cold, mapping_cold = self._setup(hierarchy, "main_memory")
        for allocator in (allocator_hot, allocator_cold):
            for _ in range(50):
                allocator.free(allocator.malloc(64))
        hot_breakdown = breakdown_accesses(allocator_hot, mapping_hot)
        cold_breakdown = breakdown_accesses(allocator_cold, mapping_cold)
        assert model.dynamic_energy_nj(hot_breakdown) < model.dynamic_energy_nj(cold_breakdown)

    @staticmethod
    def _setup(hierarchy, module_name):
        mapping = PoolMapping(hierarchy)
        mapping.place_pool("p", module_name, 8192)
        pool = FixedSizePool("p", 64, address_space=mapping.address_space_for("p"))
        return ComposedAllocator([pool]), mapping

    def test_execution_cycles_include_cpu_overhead(self):
        hierarchy = embedded_two_level()
        model = EnergyModel(hierarchy, cpu_overhead_cycles=100)
        allocator, mapping = self._setup(hierarchy, "main_memory")
        allocator.malloc(64)
        breakdown = breakdown_accesses(allocator, mapping)
        assert model.execution_cycles(breakdown, 10) == model.memory_cycles(breakdown) + 1000

    def test_static_energy_scales_with_footprint(self):
        model = EnergyModel(embedded_two_level(), static_nj_per_byte=0.5)
        assert model.static_energy_nj({"main_memory": 100}) == pytest.approx(50.0)

    def test_invalid_operation_count(self):
        model = EnergyModel(embedded_two_level())
        with pytest.raises(ValueError):
            model.cpu_energy_nj(-1)
        with pytest.raises(ValueError):
            model.execution_cycles(None, -1)  # type: ignore[arg-type]
