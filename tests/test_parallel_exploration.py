"""Tests for the evaluation backends and the point memoisation cache.

The contract under test: whichever backend performs the point evaluations,
an exploration (exhaustive or heuristic) must produce a byte-identical
:class:`ResultDatabase` and the same Pareto front for the same seed — the
backend only changes *where* points are profiled, never *which* points or
*in which order* results are recorded.
"""

import pytest

from repro.core.exploration import (
    ExplorationEngine,
    ExplorationSettings,
    ProcessPoolBackend,
    SerialBackend,
    canonical_point_key,
    explore,
    make_backend,
)
from repro.core.search import (
    EvolutionarySearch,
    HillClimbSearch,
    RandomSearch,
    SearchBudget,
)
from repro.core.space import compact_parameter_space, smoke_parameter_space
from repro.workloads.easyport import EasyportWorkload
from repro.workloads.synthetic import FixedSizesWorkload


@pytest.fixture(scope="module")
def small_trace():
    return EasyportWorkload(packets=150).generate(seed=5)


@pytest.fixture(scope="module")
def pool_backend():
    backend = ProcessPoolBackend(jobs=4)
    yield backend
    backend.close()


def database_bytes(database, tmp_path, name):
    path = tmp_path / name
    database.to_json(path)
    return path.read_bytes()


def pareto_ids(database):
    return [record.configuration_id for record in database.pareto_records()]


class TestBackendSelection:
    def test_make_backend_serial(self):
        assert isinstance(make_backend(None), SerialBackend)
        assert isinstance(make_backend(1), SerialBackend)

    def test_make_backend_pool(self):
        backend = make_backend(3)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.jobs == 3
        backend.close()

    def test_make_backend_zero_means_all_cores(self):
        import os

        backend = make_backend(0)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.jobs == (os.cpu_count() or 1)
        backend.close()

    def test_make_backend_negative_rejected(self):
        with pytest.raises(ValueError):
            make_backend(-2)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(jobs=0)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(jobs=2, chunk_size=0)

    def test_backends_satisfy_protocol(self):
        from repro.core.exploration import EvaluationBackend

        assert isinstance(SerialBackend(), EvaluationBackend)
        assert isinstance(ProcessPoolBackend(jobs=2), EvaluationBackend)


class TestSerialParallelEquivalence:
    def test_exhaustive_databases_byte_identical(self, small_trace, tmp_path, pool_backend):
        serial = ExplorationEngine(smoke_parameter_space(), small_trace).explore()
        parallel = ExplorationEngine(
            smoke_parameter_space(), small_trace, backend=pool_backend
        ).explore()
        assert database_bytes(serial, tmp_path, "serial.json") == database_bytes(
            parallel, tmp_path, "parallel.json"
        )
        assert pareto_ids(serial) == pareto_ids(parallel)

    def test_sampled_exploration_identical(self, small_trace, tmp_path, pool_backend):
        settings = ExplorationSettings(sample=5, sample_seed=11)
        serial = ExplorationEngine(
            smoke_parameter_space(), small_trace, settings=settings
        ).explore()
        parallel = ExplorationEngine(
            smoke_parameter_space(), small_trace, settings=settings, backend=pool_backend
        ).explore()
        assert database_bytes(serial, tmp_path, "s.json") == database_bytes(
            parallel, tmp_path, "p.json"
        )

    @pytest.mark.parametrize(
        "strategy_factory",
        [
            lambda engine: RandomSearch(engine, SearchBudget(evaluations=12, seed=7)),
            lambda engine: HillClimbSearch(engine, SearchBudget(evaluations=12, seed=7)),
            lambda engine: EvolutionarySearch(
                engine, SearchBudget(evaluations=12, seed=7), population=4, offspring=4
            ),
        ],
        ids=["random", "hillclimb", "evolutionary"],
    )
    def test_search_trajectories_identical(
        self, small_trace, tmp_path, pool_backend, strategy_factory
    ):
        serial_engine = ExplorationEngine(compact_parameter_space(), small_trace)
        serial = strategy_factory(serial_engine).run()
        parallel_engine = ExplorationEngine(
            compact_parameter_space(), small_trace, backend=pool_backend
        )
        parallel = strategy_factory(parallel_engine).run()
        assert database_bytes(serial, tmp_path, "s.json") == database_bytes(
            parallel, tmp_path, "p.json"
        )
        assert pareto_ids(serial) == pareto_ids(parallel)

    def test_progress_callback_with_parallel_backend(self, small_trace, pool_backend):
        calls = []
        engine = ExplorationEngine(
            smoke_parameter_space(),
            small_trace,
            backend=pool_backend,
            progress_callback=lambda done, total: calls.append((done, total)),
        )
        engine.explore()
        assert calls[-1] == (smoke_parameter_space().size(), smoke_parameter_space().size())

    def test_explore_helper_with_jobs(self, small_trace):
        serial = explore(smoke_parameter_space(), small_trace)
        parallel = explore(smoke_parameter_space(), small_trace, jobs=2)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.metrics == b.metrics

    def test_engine_mutation_between_batches_reaches_workers(self, small_trace):
        """Mutating engine state in place between batches must re-snapshot
        the workers: parallel results track the mutation exactly like serial
        ones, instead of profiling against a stale pickled engine."""

        def run(backend):
            engine = ExplorationEngine(
                smoke_parameter_space(), small_trace, backend=backend
            )
            items = [(engine.space.point_at(i), f"a{i}") for i in range(4)]
            first = engine.evaluate_points(items)
            engine.hot_sizes = engine.hot_sizes[:2]  # in-place state change
            engine.clear_cache()  # force re-evaluation of the same points
            second = engine.evaluate_points(items)
            return [record.metrics for record in first + second]

        serial_metrics = run(SerialBackend())
        pool = ProcessPoolBackend(jobs=2)
        try:
            parallel_metrics = run(pool)
        finally:
            pool.close()
        assert serial_metrics == parallel_metrics

    def test_pool_of_one_job_falls_back_to_in_process(self, small_trace):
        backend = ProcessPoolBackend(jobs=1)
        engine = ExplorationEngine(smoke_parameter_space(), small_trace, backend=backend)
        database = engine.explore()
        assert len(database) == smoke_parameter_space().size()
        assert backend._pool is None  # never forked workers
        backend.close()


class TestMemoisationCache:
    def test_repeat_evaluation_hits_cache(self, small_trace):
        engine = ExplorationEngine(smoke_parameter_space(), small_trace)
        point = engine.space.point_at(0)
        first = engine.evaluate_point(point, "a")
        second = engine.evaluate_point(point, "b")
        assert engine.cache_misses == 1
        assert engine.cache_hits == 1
        assert engine.cached_point_count == 1
        assert first.metrics == second.metrics

    def test_cache_hits_honour_the_submitted_label(self, small_trace):
        """A later caller must not record a point under the first caller's
        label (e.g. an evolutionary record tagged ``hillclimb_...``)."""
        engine = ExplorationEngine(smoke_parameter_space(), small_trace)
        point = engine.space.point_at(0)
        first = engine.evaluate_point(point, "hillclimb_000000")
        second = engine.evaluate_point(point, "evolutionary_000000")
        unlabelled = engine.evaluate_point(point)
        assert first.configuration_id == "hillclimb_000000"
        assert second.configuration_id == "evolutionary_000000"
        assert unlabelled.configuration_id == "hillclimb_000000"  # cached label kept
        assert first.metrics == second.metrics

    def test_key_order_does_not_matter(self, small_trace):
        engine = ExplorationEngine(smoke_parameter_space(), small_trace)
        point = engine.space.point_at(1)
        reversed_point = dict(reversed(list(point.items())))
        assert canonical_point_key(point) == canonical_point_key(reversed_point)
        engine.evaluate_point(point)
        engine.evaluate_point(reversed_point)
        assert engine.cache_hits == 1

    def test_duplicates_within_batch_profiled_once(self, small_trace):
        engine = ExplorationEngine(smoke_parameter_space(), small_trace)
        point = engine.space.point_at(2)
        records = engine.evaluate_points([(point, "x"), (point, "y"), (point, "z")])
        assert engine.cache_misses == 1
        assert engine.cache_hits == 2
        assert len({id(record) for record in records}) == 3  # distinct objects
        assert records[0].metrics == records[1].metrics == records[2].metrics

    def test_cached_records_are_copies(self, small_trace):
        """Adding a cached record to a second database must not clobber the
        index it got in the first."""
        engine = ExplorationEngine(smoke_parameter_space(), small_trace)
        point = engine.space.point_at(0)
        from repro.core.results import ResultDatabase

        first_db, second_db = ResultDatabase("a"), ResultDatabase("b")
        first_db.add(engine.evaluate_point(point))
        second_db.add(engine.evaluate_point(engine.space.point_at(1)))
        second_db.add(engine.evaluate_point(point))
        assert first_db[0].index == 0
        assert second_db[1].index == 1

    def test_no_stale_results_when_trace_differs(self):
        """The cache is engine-scoped, and engines are trace-scoped: the same
        point on a different trace must be re-profiled, not served stale."""
        point = smoke_parameter_space().point_at(0)
        trace_a = FixedSizesWorkload(sizes=[64], operations=300).generate(seed=2)
        trace_b = FixedSizesWorkload(sizes=[640], operations=500).generate(seed=2)
        engine_a = ExplorationEngine(smoke_parameter_space(), trace_a)
        engine_b = ExplorationEngine(smoke_parameter_space(), trace_b)
        record_a = engine_a.evaluate_point(point)
        record_b = engine_b.evaluate_point(point)
        assert engine_b.cache_hits == 0  # nothing leaked across engines
        assert record_a.metrics != record_b.metrics
        assert record_a.metrics == engine_a.evaluate_point(point).metrics

    def test_clear_cache(self, small_trace):
        engine = ExplorationEngine(smoke_parameter_space(), small_trace)
        engine.evaluate_point(engine.space.point_at(0))
        engine.clear_cache()
        assert engine.cached_point_count == 0
        assert engine.cache_hits == 0 and engine.cache_misses == 0
        engine.evaluate_point(engine.space.point_at(0))
        assert engine.cache_misses == 1

    def test_search_revisits_do_not_reprofile(self, small_trace):
        """A hill climb on the 8-point smoke space must revisit points; every
        revisit must be a cache hit, and the database must record the split."""
        engine = ExplorationEngine(smoke_parameter_space(), small_trace)
        database = HillClimbSearch(engine, SearchBudget(evaluations=8, seed=3)).run()
        assert engine.cache_misses <= smoke_parameter_space().size()
        assert database.cache_misses == engine.cache_misses
        assert database.cache_hits == engine.cache_hits
        assert database.cache_hits > 0  # 8-point space with restarts must revisit

    def test_cache_counters_survive_json_round_trip(self, small_trace, tmp_path):
        engine = ExplorationEngine(smoke_parameter_space(), small_trace)
        database = HillClimbSearch(engine, SearchBudget(evaluations=8, seed=3)).run()
        path = tmp_path / "db.json"
        database.to_json(path)
        from repro.core.results import ResultDatabase

        loaded = ResultDatabase.from_json(path)
        assert loaded.cache_hits == database.cache_hits
        assert loaded.cache_misses == database.cache_misses
        assert "cache" in database.summary()

    def test_summary_counts_engine_misses(self, small_trace):
        database = ExplorationEngine(smoke_parameter_space(), small_trace).explore()
        assert database.summary()["cache"] == {
            "hits": 0,
            "misses": smoke_parameter_space().size(),
        }

    def test_summary_omits_cache_for_hand_built_databases(self, small_trace):
        from repro.core.results import ResultDatabase

        engine = ExplorationEngine(smoke_parameter_space(), small_trace)
        database = ResultDatabase("manual")
        database.add(engine.run_point(engine.space.point_at(0)))
        assert "cache" not in database.summary()


class TestSeedDeterminismAcrossStrategies:
    def test_strategies_own_their_rng(self, small_trace):
        """Two interleaved strategies must not perturb each other's streams."""
        engine = ExplorationEngine(compact_parameter_space(), small_trace)
        alone = RandomSearch(engine, SearchBudget(evaluations=6, seed=9))
        alone_points = [alone._random_point() for _ in range(6)]

        first = RandomSearch(engine, SearchBudget(evaluations=6, seed=9))
        second = RandomSearch(engine, SearchBudget(evaluations=6, seed=1234))
        interleaved = []
        for _ in range(6):
            interleaved.append(first._random_point())
            second._random_point()
        assert interleaved == alone_points


class TestRegistryStrategiesBackendIdentity:
    """Every strategy reachable through the registry — including the
    surrogate portfolio — must produce a byte-identical database serially,
    under a process pool, and across repeat runs with the same seed."""

    # Small per-strategy params so each run fits a 12-evaluation budget and
    # still exercises the model-guided phases (surrogate forests, TPE
    # densities, NSGA-II generations).
    PARAMS = {
        "exhaustive": {},
        "random": {},
        "hillclimb": {},
        "evolutionary": {"population": 4, "offspring": 4},
        "nsga2": {"population": 4, "offspring": 4},
        "tpe": {"startup": 4, "batch": 4, "candidates": 16},
        "surrogate": {
            "initial": 5,
            "candidates": 24,
            "surrogate_fraction": 0.25,
            "trees": 4,
            "depth": 3,
        },
    }

    def _run(self, name, trace, backend=None):
        from repro.api import registry

        entry = registry.strategies.get(name)
        space = (
            smoke_parameter_space() if name == "exhaustive" else compact_parameter_space()
        )
        engine = ExplorationEngine(space, trace, backend=backend)
        kwargs = dict(self.PARAMS[name])
        if name != "exhaustive":
            kwargs["budget"] = 12
        return entry.factory(engine, seed=7, **kwargs)

    def test_every_registered_strategy_is_covered(self):
        from repro.api import registry

        assert sorted(self.PARAMS) == registry.strategies.names()

    @pytest.mark.parametrize("name", sorted(PARAMS))
    def test_serial_pool_and_repeat_runs_byte_identical(
        self, name, small_trace, tmp_path, pool_backend
    ):
        serial = self._run(name, small_trace)
        repeat = self._run(name, small_trace)
        pooled = self._run(name, small_trace, backend=pool_backend)
        reference = database_bytes(serial, tmp_path, "serial.json")
        assert reference == database_bytes(repeat, tmp_path, "repeat.json")
        assert reference == database_bytes(pooled, tmp_path, "pool.json")
        assert pareto_ids(serial) == pareto_ids(pooled)
        assert len(serial) > 0


class TestWorkerPayloads:
    """The process-pool backend must ship O(points) per chunk, not O(trace).

    The engine state travels once per worker through the pool initializer,
    split into an engine-sans-trace payload (flat in the trace size) and a
    compiled columnar trace payload (a few bytes per event, serialised once
    and reused across pool restarts).  Chunk items stay (point, label)
    tuples whatever the workload.
    """

    def engine_for(self, packets):
        trace = EasyportWorkload(packets=packets).generate(seed=5)
        return ExplorationEngine(smoke_parameter_space(), trace)

    def test_engine_payload_flat_in_trace_size(self):
        import pickle

        backend = ProcessPoolBackend(jobs=2)
        small = self.engine_for(50)
        big = self.engine_for(2000)
        small_payload, _, small_trace_payload = backend._engine_payloads(small)
        big_payload, _, big_trace_payload = backend._engine_payloads(big)
        assert len(big.trace) > 10 * len(small.trace)
        # Engine payload no longer embeds the events: growing the trace by
        # an order of magnitude must not move it by more than a few hundred
        # bytes (hot sizes/fingerprint strings may differ slightly).
        assert abs(len(big_payload) - len(small_payload)) < 512
        # The trace ships in columnar form: small per-event cost, and far
        # below the event-object pickle the initializer used to receive.
        event_payload = pickle.dumps(
            big.trace.events, protocol=pickle.HIGHEST_PROTOCOL
        )
        assert len(big_trace_payload) < len(event_payload) / 2
        assert len(small_trace_payload) < len(event_payload)

    def test_chunk_items_are_o_points(self):
        import pickle

        engine = self.engine_for(2000)
        items = [
            (point, f"cfg{index:05d}")
            for index, point in enumerate(engine.space.points())
        ]
        chunk_payload = pickle.dumps(items[:4], protocol=pickle.HIGHEST_PROTOCOL)
        # Four points must cost well under a kilobyte — nothing trace-sized
        # rides along with a chunk.
        assert len(chunk_payload) < 1024

    def test_trace_payload_cached_across_pool_restarts(self):
        backend = ProcessPoolBackend(jobs=2)
        engine = self.engine_for(200)
        _, key_a, payload_a = backend._engine_payloads(engine)
        _, key_b, payload_b = backend._engine_payloads(engine)
        assert key_a == key_b
        assert payload_a is payload_b  # serialised exactly once

    def test_worker_reconstructs_equivalent_records(self, small_trace, pool_backend):
        """End-to-end: records computed in workers match in-process ones."""
        serial = ExplorationEngine(smoke_parameter_space(), small_trace)
        parallel = ExplorationEngine(
            smoke_parameter_space(), small_trace, backend=pool_backend
        )
        items = [
            (point, f"cfg{index:05d}")
            for index, point in enumerate(smoke_parameter_space().points())
        ][:6]
        assert [record.metrics for record in serial.evaluate_points(items)] == [
            record.metrics for record in parallel.evaluate_points(items)
        ]

    def test_parent_trace_cache_immune_to_mutation(self):
        """The pre-populated worker cache must hold a snapshot, not the live trace.

        Mutating the original trace after a pool was created must not leak
        the mutated events to a later engine whose (regenerated) trace has
        the same content fingerprint.
        """
        from repro.core import exploration as exploration_module
        from repro.profiling.events import alloc

        trace = EasyportWorkload(packets=30).generate(seed=5)
        engine = ExplorationEngine(smoke_parameter_space(), trace)
        backend = ProcessPoolBackend(jobs=2)
        try:
            payloads = backend._engine_payloads(engine)
            key = payloads[1]
            exploration_module._WORKER_TRACE_CACHE.pop(key, None)
            pool = backend._ensure_pool(engine)
            assert pool is not None
            cached = exploration_module._WORKER_TRACE_CACHE[key]
            assert cached is not trace
            events_before = len(cached)
            trace.append(alloc(10**6, 64, 10**6))  # mutate the live trace
            assert len(exploration_module._WORKER_TRACE_CACHE[key]) == events_before
        finally:
            backend.close()
            exploration_module._WORKER_TRACE_CACHE.pop(key, None)
