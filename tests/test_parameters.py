"""Unit tests for the parameter space (repro.core.parameters, repro.core.space)."""

import pytest

from repro.core.parameters import Parameter, ParameterSpace
from repro.core.space import (
    compact_parameter_space,
    default_parameter_space,
    easyport_parameter_space,
    smoke_parameter_space,
    vtc_parameter_space,
)


class TestParameter:
    def test_basic_properties(self):
        parameter = Parameter("fit", ("first_fit", "best_fit"))
        assert len(parameter) == 2
        assert parameter.index_of("best_fit") == 1

    def test_values_are_frozen(self):
        parameter = Parameter("fit", ["a", "b"])
        assert isinstance(parameter.values, tuple)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Parameter("fit", ())
        with pytest.raises(ValueError):
            Parameter("", (1,))


class TestParameterSpace:
    def make_space(self):
        space = ParameterSpace()
        space.add_array("a", [1, 2, 3])
        space.add_array("b", ["x", "y"])
        space.add_array("c", [True, False])
        return space

    def test_size_is_product(self):
        assert self.make_space().size() == 12

    def test_enumeration_yields_every_point_once(self):
        space = self.make_space()
        points = list(space.points())
        assert len(points) == 12
        assert len({tuple(sorted(point.items())) for point in points}) == 12

    def test_enumeration_is_deterministic(self):
        first = list(self.make_space().points())
        second = list(self.make_space().points())
        assert first == second

    def test_point_at_matches_enumeration(self):
        space = self.make_space()
        points = list(space.points())
        for index in range(space.size()):
            assert space.point_at(index) == points[index]

    def test_index_of_inverts_point_at(self):
        space = self.make_space()
        for index in range(space.size()):
            assert space.index_of(space.point_at(index)) == index

    def test_point_at_out_of_range(self):
        with pytest.raises(IndexError):
            self.make_space().point_at(12)
        with pytest.raises(IndexError):
            self.make_space().point_at(-1)

    def test_sampling_deterministic_and_unique(self):
        space = self.make_space()
        sample = space.sample(5, seed=3)
        assert sample == space.sample(5, seed=3)
        assert len({tuple(sorted(point.items())) for point in sample}) == 5

    def test_sampling_capped_at_size(self):
        assert len(self.make_space().sample(1000, seed=0)) == 12

    def test_validate_point(self):
        space = self.make_space()
        space.validate_point({"a": 1, "b": "x", "c": True})
        with pytest.raises(ValueError):
            space.validate_point({"a": 1, "b": "x"})
        with pytest.raises(ValueError):
            space.validate_point({"a": 99, "b": "x", "c": True})
        with pytest.raises(ValueError):
            space.validate_point({"a": 1, "b": "x", "c": True, "d": 7})

    def test_duplicate_parameter_rejected(self):
        space = self.make_space()
        with pytest.raises(ValueError):
            space.add_array("a", [9])

    def test_lookup(self):
        space = self.make_space()
        assert space.parameter("b").values == ("x", "y")
        assert "a" in space
        with pytest.raises(KeyError):
            space.parameter("zzz")

    def test_round_trip_dict(self):
        space = self.make_space()
        rebuilt = ParameterSpace.from_dict(space.as_dict())
        assert rebuilt.size() == space.size()
        assert list(rebuilt.points()) == list(space.points())

    def test_describe_lists_all_parameters(self):
        text = self.make_space().describe()
        for name in ("a", "b", "c"):
            assert name in text

    def test_empty_space(self):
        assert ParameterSpace().size() == 1
        assert list(ParameterSpace().points()) == []


class TestPredefinedSpaces:
    def test_default_space_is_tens_of_thousands(self):
        size = default_parameter_space().size()
        assert 10_000 <= size <= 100_000

    def test_compact_space_is_ci_sized(self):
        size = compact_parameter_space().size()
        assert 50 <= size <= 1000

    def test_smoke_space_is_tiny(self):
        assert smoke_parameter_space().size() <= 32

    def test_spaces_share_parameter_names(self):
        default_names = set(default_parameter_space().names())
        assert set(compact_parameter_space().names()) == default_names
        assert set(smoke_parameter_space().names()) == default_names

    def test_case_study_spaces(self):
        assert easyport_parameter_space().size() >= vtc_parameter_space().size()

    def test_negative_dedicated_pools_rejected(self):
        with pytest.raises(ValueError):
            default_parameter_space(max_dedicated_pools=-1)
