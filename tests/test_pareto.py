"""Unit tests for the Pareto machinery (repro.core.pareto)."""

import random

import pytest

from repro.core.pareto import (
    IncrementalParetoFront,
    dominates,
    hypervolume,
    hypervolume_2d,
    knee_point,
    non_dominated,
    pareto_front,
    pareto_front_indices,
    pareto_rank,
    reference_point,
    sort_front,
)


class TestDominates:
    def test_strict_domination(self):
        assert dominates((1, 1), (2, 2))

    def test_partial_improvement_dominates(self):
        assert dominates((1, 2), (2, 2))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1, 1), (1, 1))

    def test_tradeoff_does_not_dominate(self):
        assert not dominates((1, 3), (2, 2))
        assert not dominates((2, 2), (1, 3))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2))


class TestNonDominated:
    def test_simple_front(self):
        vectors = [(1, 4), (2, 2), (4, 1), (3, 3), (5, 5)]
        assert set(non_dominated(vectors)) == {0, 1, 2}

    def test_single_point(self):
        assert non_dominated([(1, 1)]) == [0]

    def test_all_on_front(self):
        vectors = [(1, 3), (2, 2), (3, 1)]
        assert non_dominated(vectors) == [0, 1, 2]

    def test_duplicates_both_kept(self):
        vectors = [(1, 1), (1, 1), (2, 2)]
        assert set(non_dominated(vectors)) == {0, 1}

    def test_empty(self):
        assert non_dominated([]) == []

    def test_three_objectives(self):
        vectors = [(1, 1, 1), (2, 2, 2), (1, 2, 0)]
        front = set(non_dominated(vectors))
        assert 0 in front and 2 in front and 1 not in front


class TestParetoFront:
    def test_front_members_mutually_non_dominated(self):
        items = [(1, 4), (2, 2), (4, 1), (3, 3), (2, 5), (5, 2)]
        front = pareto_front(items, key=lambda item: item)
        for first in front:
            for second in front:
                assert not dominates(first, second)

    def test_front_dominates_or_ties_everything_else(self):
        items = [(1, 4), (2, 2), (4, 1), (3, 3), (2, 5), (5, 2)]
        front = pareto_front(items, key=lambda item: item)
        others = [item for item in items if item not in front]
        for other in others:
            assert any(dominates(member, other) for member in front)

    def test_indices_variant(self):
        items = [(1, 4), (0, 5), (9, 9)]
        indices = pareto_front_indices(items, key=lambda item: item)
        assert 2 not in indices

    def test_key_function(self):
        items = [{"a": 1, "b": 4}, {"a": 2, "b": 2}, {"a": 5, "b": 5}]
        front = pareto_front(items, key=lambda item: (item["a"], item["b"]))
        assert {"a": 5, "b": 5} not in front


class TestParetoRank:
    def test_rank_zero_is_the_front(self):
        vectors = [(1, 4), (2, 2), (4, 1), (3, 3), (5, 5)]
        ranks = pareto_rank(vectors)
        front = set(non_dominated(vectors))
        for index, rank in enumerate(ranks):
            assert (rank == 0) == (index in front)

    def test_layering(self):
        vectors = [(1, 1), (2, 2), (3, 3)]
        assert pareto_rank(vectors) == [0, 1, 2]

    def test_empty(self):
        assert pareto_rank([]) == []

    def test_single_point_is_rank_zero(self):
        assert pareto_rank([(7, 7)]) == [0]

    def test_exact_ties_share_a_rank(self):
        # Equal vectors never dominate each other, so duplicates always sit
        # in the same layer — here behind the strictly better (1, 1).
        assert pareto_rank([(2, 2), (2, 2), (1, 1)]) == [1, 1, 0]

    def test_all_tied_is_one_layer(self):
        assert pareto_rank([(3, 3)] * 4) == [0, 0, 0, 0]


class TestSortFront:
    def test_sorted_by_requested_objective(self):
        items = [(3, 1), (1, 3), (2, 2)]
        by_x = sort_front(items, key=lambda item: item, objective_index=0)
        assert [item[0] for item in by_x] == [1, 2, 3]
        by_y = sort_front(items, key=lambda item: item, objective_index=1)
        assert [item[1] for item in by_y] == [1, 2, 3]


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume_2d([(1, 1)], reference=(3, 3)) == pytest.approx(4.0)

    def test_two_points(self):
        value = hypervolume_2d([(1, 2), (2, 1)], reference=(3, 3))
        assert value == pytest.approx(3.0)

    def test_dominated_point_does_not_add_area(self):
        base = hypervolume_2d([(1, 1)], reference=(3, 3))
        extended = hypervolume_2d([(1, 1), (2, 2)], reference=(3, 3))
        assert extended == pytest.approx(base)

    def test_points_outside_reference_ignored(self):
        assert hypervolume_2d([(4, 4)], reference=(3, 3)) == 0.0

    def test_bigger_front_bigger_volume(self):
        small = hypervolume_2d([(2, 2)], reference=(4, 4))
        large = hypervolume_2d([(1, 2), (2, 1)], reference=(4, 4))
        assert large > small

    def test_invalid_reference(self):
        with pytest.raises(ValueError):
            hypervolume_2d([(1, 1)], reference=(1, 2, 3))

    def test_empty_front(self):
        assert hypervolume_2d([], reference=(3, 3)) == 0.0

    def test_point_on_the_reference_contributes_nothing(self):
        assert hypervolume_2d([(3, 3)], reference=(3, 3)) == 0.0

    def test_exact_duplicate_points_count_once(self):
        single = hypervolume_2d([(1, 1)], reference=(3, 3))
        doubled = hypervolume_2d([(1, 1), (1, 1)], reference=(3, 3))
        assert doubled == pytest.approx(single)

    def test_non_2d_vectors_are_ignored(self):
        assert hypervolume_2d([(1, 1, 1)], reference=(3, 3)) == 0.0


class TestHypervolumeND:
    """The WFG-style n-D hypervolume (repro.core.pareto.hypervolume)."""

    def test_single_point_3d(self):
        # Box from (1, 1, 1) to (3, 3, 3): volume 2 * 2 * 2.
        assert hypervolume([(1, 1, 1)], reference=(3, 3, 3)) == pytest.approx(8.0)

    def test_two_points_3d_inclusion_exclusion(self):
        # Each box has volume 2*1*2 = 4; their overlap (from the
        # componentwise max (2, 2, 1) to the reference) has volume 1*1*2.
        value = hypervolume([(1, 2, 1), (2, 1, 1)], reference=(3, 3, 3))
        assert value == pytest.approx(4.0 + 4.0 - 2.0)

    def test_dominated_and_duplicate_points_add_nothing(self):
        base = hypervolume([(1, 1, 1)], reference=(3, 3, 3))
        noisy = hypervolume(
            [(1, 1, 1), (2, 2, 2), (1, 1, 1)], reference=(3, 3, 3)
        )
        assert noisy == pytest.approx(base)

    def test_points_outside_or_on_the_reference_contribute_nothing(self):
        assert hypervolume([(4, 1, 1)], reference=(3, 3, 3)) == 0.0
        assert hypervolume([(3, 3, 3)], reference=(3, 3, 3)) == 0.0
        assert hypervolume([], reference=(3, 3, 3)) == 0.0

    def test_adding_a_tradeoff_point_grows_the_volume(self):
        small = hypervolume([(2, 2, 2)], reference=(4, 4, 4))
        large = hypervolume([(2, 2, 2), (1, 3, 2)], reference=(4, 4, 4))
        assert large > small

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hypervolume([(1, 1)], reference=(3, 3, 3))

    def test_monotone_in_the_front(self):
        # A superset front never has smaller hypervolume.
        rng = random.Random(5)
        reference = (1.0, 1.0, 1.0, 1.0)
        points = [
            tuple(rng.random() for _ in range(4)) for _ in range(12)
        ]
        grown = 0.0
        for count in range(1, len(points) + 1):
            value = hypervolume(points[:count], reference)
            assert value >= grown - 1e-12
            grown = value

    def test_property_matches_hypervolume_2d(self):
        # On random 2-D inputs the n-D recursion must agree exactly with
        # the dedicated sweep implementation.
        rng = random.Random(17)
        for _ in range(200):
            count = rng.randrange(1, 12)
            points = [
                (rng.randrange(0, 20) / 2, rng.randrange(0, 20) / 2)
                for _ in range(count)
            ]
            reference = (10.0, 10.0)
            assert hypervolume(points, reference) == pytest.approx(
                hypervolume_2d(points, reference), abs=1e-9
            )

    def test_3d_agrees_with_monte_carlo(self):
        rng = random.Random(29)
        points = [tuple(rng.random() for _ in range(3)) for _ in range(6)]
        reference = (1.0, 1.0, 1.0)
        exact = hypervolume(points, reference)
        samples = 20000
        hits = 0
        for _ in range(samples):
            sample = tuple(rng.random() for _ in range(3))
            if any(
                all(p <= s for p, s in zip(point, sample)) for point in points
            ):
                hits += 1
        assert exact == pytest.approx(hits / samples, abs=0.02)


class TestReferencePoint:
    def test_worst_corner_plus_margin(self):
        reference = reference_point([(0, 10), (10, 0)], margin=0.1)
        assert reference == pytest.approx((11.0, 11.0))

    def test_zero_span_axis_still_pushed_out(self):
        reference = reference_point([(5, 1), (5, 2)], margin=0.1)
        assert reference[0] > 5.0
        assert reference[1] == pytest.approx(2.1)

    def test_zero_value_zero_span_axis(self):
        reference = reference_point([(0.0,)], margin=0.1)
        assert reference[0] > 0.0

    def test_every_vector_strictly_inside(self):
        rng = random.Random(3)
        vectors = [tuple(rng.uniform(-5, 5) for _ in range(4)) for _ in range(30)]
        reference = reference_point(vectors)
        for vector in vectors:
            assert all(value < bound for value, bound in zip(vector, reference))
            assert hypervolume([vector], reference) > 0.0

    def test_empty_and_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            reference_point([])
        with pytest.raises(ValueError):
            reference_point([(1, 2)], margin=-0.5)


class TestKneePoint:
    def test_balanced_point_chosen(self):
        items = [(1, 10), (10, 1), (4, 4)]
        assert knee_point(items, key=lambda item: item) == (4, 4)

    def test_empty(self):
        assert knee_point([], key=lambda item: item) is None

    def test_single(self):
        assert knee_point([(2, 2)], key=lambda item: item) == (2, 2)

    def test_degenerate_dimension(self):
        # One objective has zero span; the knee is still well defined.
        items = [(1, 5), (2, 5), (3, 5)]
        assert knee_point(items, key=lambda item: item) == (1, 5)

    def test_all_dimensions_degenerate(self):
        # Every objective tied: all distances are zero, the first item wins.
        items = [(4, 4), (4, 4), (4, 4)]
        assert knee_point(items, key=lambda item: item) is items[0]

    def test_exact_tie_keeps_first(self):
        # Two symmetric extremes are equidistant from the ideal point; the
        # earlier one is returned deterministically.
        items = [(0, 10), (10, 0)]
        assert knee_point(items, key=lambda item: item) is items[0]


class TestIncrementalParetoFront:
    def test_accepts_non_dominated_and_rejects_dominated(self):
        front = IncrementalParetoFront()
        assert front.add("a", (2, 2)) is True
        assert front.add("b", (3, 3)) is False  # dominated by a
        assert front.add("c", (1, 3)) is True   # trade-off
        assert front.items() == ["a", "c"]

    def test_eviction_on_better_insert(self):
        front = IncrementalParetoFront()
        front.add("a", (3, 3))
        front.add("b", (2, 4))
        assert front.add("c", (1, 1)) is True  # dominates both
        assert front.items() == ["c"]

    def test_duplicates_are_both_kept(self):
        front = IncrementalParetoFront()
        assert front.add("a", (1, 1)) is True
        assert front.add("b", (1, 1)) is True
        assert front.items() == ["a", "b"]

    def test_empty_front(self):
        front = IncrementalParetoFront()
        assert len(front) == 0
        assert front.items() == []
        assert front.dominates((1, 1)) is False

    def test_key_function(self):
        front = IncrementalParetoFront(key=lambda item: item["v"])
        front.add({"v": (2, 2)})
        assert front.add({"v": (3, 3)}) is False

    def test_vector_required_without_key(self):
        with pytest.raises(ValueError):
            IncrementalParetoFront().add("a")

    def test_dominates_query(self):
        front = IncrementalParetoFront()
        front.add("a", (1, 1))
        assert front.dominates((2, 2)) is True
        assert front.dominates((1, 1)) is False  # ties do not dominate
        assert front.dominates((0, 5)) is False

    def test_matches_batch_front_on_a_known_sequence(self):
        vectors = [(1, 4), (2, 2), (4, 1), (3, 3), (2, 5), (5, 2), (2, 2)]
        front = IncrementalParetoFront()
        for index, vector in enumerate(vectors):
            front.add(index, vector)
        assert front.items() == pareto_front_indices(vectors, key=lambda v: v)

    def test_randomized_equivalence_with_batch_front(self):
        """1000 random databases: incremental == batch, members and order.

        Small dimensions/values force plenty of exact ties and duplicated
        vectors — the cases where a naive online filter diverges from the
        batch semantics.
        """
        rng = random.Random(20060306)
        for _case in range(1000):
            dimensions = rng.randint(1, 4)
            count = rng.randint(0, 20)
            vectors = [
                tuple(rng.randint(0, 5) for _ in range(dimensions))
                for _ in range(count)
            ]
            front = IncrementalParetoFront()
            for index, vector in enumerate(vectors):
                front.add(index, vector)
            expected = pareto_front_indices(vectors, key=lambda v: v)
            assert front.items() == expected, f"diverged on {vectors}"
            assert front.vectors() == [vectors[i] for i in expected]
