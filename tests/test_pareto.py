"""Unit tests for the Pareto machinery (repro.core.pareto)."""

import pytest

from repro.core.pareto import (
    dominates,
    hypervolume_2d,
    knee_point,
    non_dominated,
    pareto_front,
    pareto_front_indices,
    pareto_rank,
    sort_front,
)


class TestDominates:
    def test_strict_domination(self):
        assert dominates((1, 1), (2, 2))

    def test_partial_improvement_dominates(self):
        assert dominates((1, 2), (2, 2))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1, 1), (1, 1))

    def test_tradeoff_does_not_dominate(self):
        assert not dominates((1, 3), (2, 2))
        assert not dominates((2, 2), (1, 3))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2))


class TestNonDominated:
    def test_simple_front(self):
        vectors = [(1, 4), (2, 2), (4, 1), (3, 3), (5, 5)]
        assert set(non_dominated(vectors)) == {0, 1, 2}

    def test_single_point(self):
        assert non_dominated([(1, 1)]) == [0]

    def test_all_on_front(self):
        vectors = [(1, 3), (2, 2), (3, 1)]
        assert non_dominated(vectors) == [0, 1, 2]

    def test_duplicates_both_kept(self):
        vectors = [(1, 1), (1, 1), (2, 2)]
        assert set(non_dominated(vectors)) == {0, 1}

    def test_empty(self):
        assert non_dominated([]) == []

    def test_three_objectives(self):
        vectors = [(1, 1, 1), (2, 2, 2), (1, 2, 0)]
        front = set(non_dominated(vectors))
        assert 0 in front and 2 in front and 1 not in front


class TestParetoFront:
    def test_front_members_mutually_non_dominated(self):
        items = [(1, 4), (2, 2), (4, 1), (3, 3), (2, 5), (5, 2)]
        front = pareto_front(items, key=lambda item: item)
        for first in front:
            for second in front:
                assert not dominates(first, second)

    def test_front_dominates_or_ties_everything_else(self):
        items = [(1, 4), (2, 2), (4, 1), (3, 3), (2, 5), (5, 2)]
        front = pareto_front(items, key=lambda item: item)
        others = [item for item in items if item not in front]
        for other in others:
            assert any(dominates(member, other) for member in front)

    def test_indices_variant(self):
        items = [(1, 4), (0, 5), (9, 9)]
        indices = pareto_front_indices(items, key=lambda item: item)
        assert 2 not in indices

    def test_key_function(self):
        items = [{"a": 1, "b": 4}, {"a": 2, "b": 2}, {"a": 5, "b": 5}]
        front = pareto_front(items, key=lambda item: (item["a"], item["b"]))
        assert {"a": 5, "b": 5} not in front


class TestParetoRank:
    def test_rank_zero_is_the_front(self):
        vectors = [(1, 4), (2, 2), (4, 1), (3, 3), (5, 5)]
        ranks = pareto_rank(vectors)
        front = set(non_dominated(vectors))
        for index, rank in enumerate(ranks):
            assert (rank == 0) == (index in front)

    def test_layering(self):
        vectors = [(1, 1), (2, 2), (3, 3)]
        assert pareto_rank(vectors) == [0, 1, 2]

    def test_empty(self):
        assert pareto_rank([]) == []


class TestSortFront:
    def test_sorted_by_requested_objective(self):
        items = [(3, 1), (1, 3), (2, 2)]
        by_x = sort_front(items, key=lambda item: item, objective_index=0)
        assert [item[0] for item in by_x] == [1, 2, 3]
        by_y = sort_front(items, key=lambda item: item, objective_index=1)
        assert [item[1] for item in by_y] == [1, 2, 3]


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume_2d([(1, 1)], reference=(3, 3)) == pytest.approx(4.0)

    def test_two_points(self):
        value = hypervolume_2d([(1, 2), (2, 1)], reference=(3, 3))
        assert value == pytest.approx(3.0)

    def test_dominated_point_does_not_add_area(self):
        base = hypervolume_2d([(1, 1)], reference=(3, 3))
        extended = hypervolume_2d([(1, 1), (2, 2)], reference=(3, 3))
        assert extended == pytest.approx(base)

    def test_points_outside_reference_ignored(self):
        assert hypervolume_2d([(4, 4)], reference=(3, 3)) == 0.0

    def test_bigger_front_bigger_volume(self):
        small = hypervolume_2d([(2, 2)], reference=(4, 4))
        large = hypervolume_2d([(1, 2), (2, 1)], reference=(4, 4))
        assert large > small

    def test_invalid_reference(self):
        with pytest.raises(ValueError):
            hypervolume_2d([(1, 1)], reference=(1, 2, 3))


class TestKneePoint:
    def test_balanced_point_chosen(self):
        items = [(1, 10), (10, 1), (4, 4)]
        assert knee_point(items, key=lambda item: item) == (4, 4)

    def test_empty(self):
        assert knee_point([], key=lambda item: item) is None

    def test_single(self):
        assert knee_point([(2, 2)], key=lambda item: item) == (2, 2)

    def test_degenerate_dimension(self):
        # One objective has zero span; the knee is still well defined.
        items = [(1, 5), (2, 5), (3, 5)]
        assert knee_point(items, key=lambda item: item) == (1, 5)
