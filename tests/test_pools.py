"""Unit tests for pool implementations (fixed, general, region, slab, buddy,
segregated) and the composed allocator."""

import pytest

from repro.allocator.blocks import gross_block_size
from repro.allocator.buddy import BuddyPool
from repro.allocator.composed import ComposedAllocator
from repro.allocator.errors import (
    ConfigurationError,
    DoubleFreeError,
    InvalidFreeError,
    InvalidRequestError,
    OutOfMemoryError,
)
from repro.allocator.heap import PoolAddressSpace
from repro.allocator.pool import FixedSizePool, GeneralPool, RegionPool
from repro.allocator.segregated import SegregatedFitPool, exact_size_classes
from repro.allocator.slab import SlabPool


class TestFixedSizePool:
    def test_allocate_and_free(self):
        pool = FixedSizePool("p74", 74)
        address = pool.allocate(74)
        assert pool.owns(address)
        pool.free(address)
        assert not pool.owns(address)
        assert pool.stats.alloc_ops == 1
        assert pool.stats.free_ops == 1

    def test_reuses_freed_blocks(self):
        pool = FixedSizePool("p", 64)
        first = pool.allocate(64)
        pool.free(first)
        footprint_before = pool.footprint
        second = pool.allocate(64)
        assert second == first
        assert pool.footprint == footprint_before

    def test_strict_rejects_other_sizes(self):
        pool = FixedSizePool("p", 74, strict=True)
        assert not pool.accepts(73)
        with pytest.raises(InvalidRequestError):
            pool.allocate(73)

    def test_non_strict_accepts_smaller(self):
        pool = FixedSizePool("p", 74, strict=False)
        assert pool.accepts(10)
        assert not pool.accepts(75)

    def test_capacity_limit(self):
        gross = gross_block_size(64)
        space = PoolAddressSpace(capacity=gross * 2, name="p")
        pool = FixedSizePool("p", 64, address_space=space, chunk_blocks=1)
        pool.allocate(64)
        pool.allocate(64)
        with pytest.raises(OutOfMemoryError):
            pool.allocate(64)

    def test_double_free_detected(self):
        pool = FixedSizePool("p", 64)
        address = pool.allocate(64)
        pool.free(address)
        with pytest.raises(DoubleFreeError):
            pool.free(address)

    def test_invalid_free_detected(self):
        pool = FixedSizePool("p", 64)
        with pytest.raises(InvalidFreeError):
            pool.free(12345)

    def test_zero_size_rejected(self):
        pool = FixedSizePool("p", 64)
        with pytest.raises(InvalidRequestError):
            pool.allocate(0)

    def test_constant_accesses_per_operation(self):
        pool = FixedSizePool("p", 64, chunk_blocks=1)
        costs = []
        previous = 0
        for _ in range(20):
            address = pool.allocate(64)
            pool.free(address)
            total = pool.stats.accesses.total
            costs.append(total - previous)
            previous = total
        # After warm-up, alloc+free cost must not grow with history.
        assert max(costs[2:]) <= costs[1] + 2


class TestGeneralPool:
    def test_allocate_free_roundtrip(self):
        pool = GeneralPool("g")
        addresses = [pool.allocate(size) for size in (24, 100, 700)]
        for address in addresses:
            pool.free(address)
        assert pool.live_blocks == 0

    def test_reuse_after_free(self):
        pool = GeneralPool("g", splitting="never", coalescing="never")
        address = pool.allocate(100)
        pool.free(address)
        footprint = pool.footprint
        again = pool.allocate(100)
        assert pool.footprint == footprint
        assert again == address

    def test_splitting_reduces_internal_fragmentation(self):
        never = GeneralPool("never", splitting="never", coalescing="never", chunk_size=4096)
        always = GeneralPool("always", splitting="always", coalescing="never", chunk_size=4096)
        for pool in (never, always):
            big = pool.allocate(2000)
            pool.free(big)
            pool.allocate(50)
        assert always.stats.live_gross < never.stats.live_gross

    def test_coalescing_reduces_footprint_growth(self):
        # Allocate and free many variable blocks; a coalescing pool can then
        # serve a large request without growing, a non-coalescing one cannot.
        def run(coalescing):
            pool = GeneralPool(
                "g",
                free_list="address_ordered",
                fit="first_fit",
                coalescing=coalescing,
                splitting="always",
                chunk_size=2048,
            )
            addresses = [pool.allocate(100) for _ in range(16)]
            for address in addresses:
                pool.free(address)
            pool.allocate(900)
            return pool.stats.peak_footprint

        assert run("immediate") <= run("never")

    def test_max_block_size_enforced(self):
        pool = GeneralPool("g", max_block_size=256)
        assert not pool.accepts(257)
        with pytest.raises(InvalidRequestError):
            pool.allocate(300)

    def test_accesses_grow_with_free_list_length_for_exhaustive_fits(self):
        pool = GeneralPool("g", fit="worst_fit", coalescing="never", splitting="never")
        # Build a long free list of varied sizes.
        addresses = [pool.allocate(16 + 8 * i) for i in range(50)]
        for address in addresses:
            pool.free(address)
        before = pool.stats.accesses.total
        pool.allocate(16)
        after = pool.stats.accesses.total
        assert after - before >= 50  # scanned the whole list

    def test_merge_never_crosses_chunk_boundaries(self):
        pool = GeneralPool(
            "g",
            free_list="address_ordered",
            coalescing="immediate",
            splitting="never",
            chunk_size=128,
        )
        first = pool.allocate(100)   # chunk 1
        second = pool.allocate(100)  # chunk 2 (does not fit chunk 1)
        pool.free(first)
        pool.free(second)
        largest = pool.free_list.largest_block()
        assert largest.size <= 128

    def test_oom_with_bounded_space(self):
        pool = GeneralPool("g", address_space=PoolAddressSpace(capacity=256, name="g"))
        with pytest.raises(OutOfMemoryError):
            for _ in range(10):
                pool.allocate(100)


class TestRegionPool:
    def test_bump_allocation(self):
        pool = RegionPool("r")
        first = pool.allocate(100)
        second = pool.allocate(100)
        assert second > first

    def test_free_does_not_reclaim(self):
        pool = RegionPool("r")
        address = pool.allocate(100)
        footprint = pool.footprint
        pool.free(address)
        assert pool.footprint == footprint

    def test_reset_region_reclaims_everything(self):
        pool = RegionPool("r")
        for _ in range(10):
            pool.allocate(200)
        pool.reset_region()
        assert pool.footprint == 0
        assert pool.live_blocks == 0


class TestSlabPool:
    def test_allocate_free_roundtrip(self):
        pool = SlabPool("s", 64)
        address = pool.allocate(64)
        pool.free(address)
        assert pool.live_blocks == 0

    def test_slab_reuse_within_slab(self):
        pool = SlabPool("s", 64, release_empty=False)
        first = pool.allocate(64)
        pool.allocate(64)
        pool.free(first)
        again = pool.allocate(64)
        assert again == first

    def test_empty_slab_released_shrinks_footprint(self):
        pool = SlabPool("s", 64, slab_bytes=1024, release_empty=True)
        addresses = [pool.allocate(64) for _ in range(4)]
        assert pool.footprint > 0
        for address in addresses:
            pool.free(address)
        assert pool.footprint == 0
        assert pool.slab_count == 0

    def test_without_release_footprint_persists(self):
        pool = SlabPool("s", 64, slab_bytes=1024, release_empty=False)
        address = pool.allocate(64)
        pool.free(address)
        assert pool.footprint == 1024

    def test_strict_mode(self):
        pool = SlabPool("s", 64, strict=True)
        assert pool.accepts(64)
        assert not pool.accepts(63)

    def test_slab_too_small_rejected(self):
        with pytest.raises(ValueError):
            SlabPool("s", 4096, slab_bytes=1024)


class TestBuddyPool:
    def test_allocate_free_roundtrip(self):
        pool = BuddyPool("b", arena_size=4096, min_block=64)
        address = pool.allocate(100)
        pool.free(address)
        assert pool.live_blocks == 0
        assert pool.free_bytes == 4096

    def test_block_sizes_are_powers_of_two(self):
        pool = BuddyPool("b", arena_size=4096, min_block=64)
        pool.allocate(100)
        block = next(iter(pool._live.values()))
        assert block.size & (block.size - 1) == 0

    def test_buddies_recombine(self):
        pool = BuddyPool("b", arena_size=1024, min_block=64)
        addresses = [pool.allocate(50) for _ in range(4)]
        for address in addresses:
            pool.free(address)
        # After freeing everything, the arena must be a single free block again.
        assert pool.free_bytes == 1024
        assert len(pool._free_offsets[pool._max_order]) == 1

    def test_arena_exhaustion(self):
        pool = BuddyPool("b", arena_size=1024, min_block=64)
        with pytest.raises(OutOfMemoryError):
            for _ in range(64):
                pool.allocate(64)

    def test_oversized_request_rejected(self):
        pool = BuddyPool("b", arena_size=1024, min_block=64)
        with pytest.raises(InvalidRequestError):
            pool.allocate(4096)

    def test_footprint_is_arena_size_once_used(self):
        pool = BuddyPool("b", arena_size=2048, min_block=64)
        pool.allocate(64)
        assert pool.footprint == 2048


class TestSegregatedFitPool:
    def test_requests_rounded_to_class(self):
        pool = SegregatedFitPool("seg")
        address = pool.allocate(70)  # lands in the 65..128 class
        block = pool._live[address]
        assert block.size == gross_block_size(128)
        pool.free(address)

    def test_exact_classes(self):
        pool = SegregatedFitPool("seg", size_classes=exact_size_classes([74, 1500]))
        assert pool.accepts(74)
        assert pool.accepts(1500)
        assert not pool.accepts(100)

    def test_free_returns_to_right_class(self):
        pool = SegregatedFitPool("seg", size_classes=exact_size_classes([64, 256]))
        address = pool.allocate(64)
        pool.free(address)
        assert len(pool.free_list_for(64)) >= 1
        assert len(pool.free_list_for(256)) == 0

    def test_unknown_size_rejected(self):
        pool = SegregatedFitPool("seg", size_classes=exact_size_classes([64]))
        with pytest.raises(InvalidRequestError):
            pool.allocate(65)

    def test_overlapping_classes_rejected(self):
        from repro.allocator.blocks import SizeClass

        with pytest.raises(ValueError):
            SegregatedFitPool("seg", size_classes=[SizeClass(1, 64), SizeClass(32, 128)])

    def test_constant_time_reuse(self):
        pool = SegregatedFitPool("seg", size_classes=exact_size_classes([64]))
        address = pool.allocate(64)
        pool.free(address)
        before = pool.stats.accesses.total
        pool.allocate(64)
        assert pool.stats.accesses.total - before <= 5


class TestComposedAllocator:
    def make_allocator(self):
        dedicated = FixedSizePool("d74", 74, strict=True)
        general = GeneralPool("general")
        return ComposedAllocator([dedicated, general], name="test")

    def test_routing_by_size(self):
        allocator = self.make_allocator()
        hot = allocator.malloc(74)
        cold = allocator.malloc(200)
        assert allocator.owner_of(hot).name == "d74"
        assert allocator.owner_of(cold).name == "general"

    def test_free_routed_to_owner(self):
        allocator = self.make_allocator()
        address = allocator.malloc(74)
        allocator.free(address)
        assert allocator.pool_named("d74").stats.free_ops == 1
        assert allocator.pool_named("general").stats.free_ops == 0

    def test_unknown_free_rejected(self):
        allocator = self.make_allocator()
        with pytest.raises(InvalidFreeError):
            allocator.free(999999)

    def test_spill_to_fallback_on_capacity(self):
        gross = gross_block_size(74)
        dedicated = FixedSizePool(
            "d74", 74, strict=True,
            address_space=PoolAddressSpace(capacity=gross, name="d74"),
            chunk_blocks=1,
        )
        general = GeneralPool("general")
        allocator = ComposedAllocator([dedicated, general])
        first = allocator.malloc(74)
        second = allocator.malloc(74)  # dedicated pool full -> spills
        assert allocator.owner_of(first).name == "d74"
        assert allocator.owner_of(second).name == "general"

    def test_total_oom_raised(self):
        only = GeneralPool("g", address_space=PoolAddressSpace(capacity=128, name="g"))
        allocator = ComposedAllocator([only])
        with pytest.raises(OutOfMemoryError):
            for _ in range(10):
                allocator.malloc(64)

    def test_stats_aggregation(self):
        allocator = self.make_allocator()
        for size in (74, 74, 300):
            allocator.malloc(size)
        stats = allocator.stats
        assert stats.total_alloc_ops == 3
        assert allocator.total_accesses >= stats.total_accesses
        assert set(allocator.accesses_by_pool()) == {"d74", "general"}

    def test_duplicate_pool_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ComposedAllocator([FixedSizePool("p", 64), FixedSizePool("p", 32)])

    def test_empty_pool_list_rejected(self):
        with pytest.raises(ConfigurationError):
            ComposedAllocator([])

    def test_reset(self):
        allocator = self.make_allocator()
        allocator.malloc(74)
        allocator.reset()
        assert allocator.live_blocks == 0
        assert allocator.total_accesses == 0
        assert allocator.check_all_freed()

    def test_leak_check(self):
        allocator = self.make_allocator()
        address = allocator.malloc(74)
        assert not allocator.check_all_freed()
        allocator.free(address)
        assert allocator.check_all_freed()


class TestFreedAddressLimit:
    """Bounding the double-free detection set (perf option).

    Unbounded (the default), every address ever freed is remembered so any
    double free is diagnosed as DoubleFreeError.  With a bound, only the
    most recently freed addresses keep the precise diagnosis — older ones
    degrade to InvalidFreeError — and no metric is affected either way.
    """

    def test_unbounded_by_default(self):
        pool = FixedSizePool("fixed", block_size=32)
        assert pool.freed_address_limit is None
        addresses = [pool.allocate(32) for _ in range(64)]
        for address in addresses:
            pool.free(address)
        assert len(pool._freed_addresses) == 64

    def test_bound_caps_set_size(self):
        pool = FixedSizePool("fixed", block_size=32)
        pool.freed_address_limit = 8
        addresses = [pool.allocate(32) for _ in range(64)]
        for address in addresses:
            pool.free(address)
        assert len(pool._freed_addresses) <= 8

    def test_recent_double_free_still_precise(self):
        pool = FixedSizePool("fixed", block_size=32)
        pool.freed_address_limit = 8
        address = pool.allocate(32)
        pool.free(address)
        with pytest.raises(DoubleFreeError):
            pool.free(address)

    def test_evicted_double_free_degrades_to_invalid(self):
        pool = FixedSizePool("fixed", block_size=32)
        pool.freed_address_limit = 4
        # Twelve concurrently live blocks → twelve distinct addresses; the
        # frees then push the first address out of the bounded window.
        addresses = [pool.allocate(32) for _ in range(12)]
        for address in addresses:
            pool.free(address)
        assert addresses[0] not in pool._freed_addresses
        with pytest.raises(InvalidFreeError):
            pool.free(addresses[0])

    def test_bound_can_be_set_on_live_pool(self):
        pool = FixedSizePool("fixed", block_size=16)
        addresses = [pool.allocate(16) for _ in range(32)]
        for address in addresses:
            pool.free(address)
        pool.freed_address_limit = 4
        assert len(pool._freed_addresses) <= 4
        pool.freed_address_limit = None
        assert pool._freed_order is None

    def test_invalid_bound_rejected(self):
        pool = FixedSizePool("fixed", block_size=16)
        with pytest.raises(ValueError):
            pool.freed_address_limit = 0

    def test_reallocation_keeps_detection_correct(self):
        pool = FixedSizePool("fixed", block_size=32)
        pool.freed_address_limit = 4
        address = pool.allocate(32)
        pool.free(address)
        again = pool.allocate(32)  # LIFO recycles the same address
        assert again == address
        pool.free(again)  # a valid free, not a double free
        with pytest.raises(DoubleFreeError):
            pool.free(again)

    def test_reset_clears_bound_state(self):
        pool = FixedSizePool("fixed", block_size=32)
        pool.freed_address_limit = 4
        address = pool.allocate(32)
        pool.free(address)
        pool.reset()
        assert len(pool._freed_addresses) == 0
        assert pool.freed_address_limit == 4  # the option survives reset

    def test_metrics_unaffected_by_bound(self):
        def run(limit):
            pool = FixedSizePool("fixed", block_size=48, chunk_blocks=4)
            if limit is not None:
                pool.freed_address_limit = limit
            live = []
            for round_ in range(6):
                live.extend(pool.allocate(48) for _ in range(8))
                for _ in range(5):
                    pool.free(live.pop())
            for address in live:
                pool.free(address)
            return pool.stats.snapshot()

        assert run(None) == run(3)

    def test_default_limit_module_switch(self):
        from repro.allocator import pool as pool_module

        try:
            pool_module.DEFAULT_FREED_ADDRESS_LIMIT = 16
            pool = FixedSizePool("fixed", block_size=32)
            assert pool.freed_address_limit == 16
        finally:
            pool_module.DEFAULT_FREED_ADDRESS_LIMIT = None

    def test_eviction_respects_refreed_addresses(self):
        """A re-freed recycled address must not be evicted by its stale entry."""
        pool = FixedSizePool("fixed", block_size=32)
        pool.freed_address_limit = 2
        x = pool.allocate(32)
        y_live = pool.allocate(32)
        z_live = pool.allocate(32)
        pool.free(x)
        x_again = pool.allocate(32)  # recycles x (stale deque entry remains)
        assert x_again == x
        pool.free(y_live)
        pool.free(x_again)  # x freed again — newest entry
        pool.free(z_live)   # overflows the bound; must evict y, not x
        assert x in pool._freed_addresses
        assert z_live in pool._freed_addresses
        assert y_live not in pool._freed_addresses
        with pytest.raises(DoubleFreeError):
            pool.free(x)

    def test_freed_order_compacts_under_recycling_churn(self):
        """Same-address free/realloc cycles must not grow the deque unboundedly."""
        pool = FixedSizePool("fixed", block_size=32)
        pool.freed_address_limit = 2
        address = pool.allocate(32)
        for _ in range(500):
            pool.free(address)
            assert pool.allocate(32) == address
        assert len(pool._freed_order) <= 16 + 4 * 2 + 1
