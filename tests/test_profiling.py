"""Unit tests for the profiling substrate: events, traces, profiler, metrics."""

import pytest

from repro.allocator.composed import ComposedAllocator
from repro.allocator.pool import FixedSizePool, GeneralPool
from repro.memhier.energy import EnergyModel
from repro.memhier.hierarchy import embedded_two_level
from repro.memhier.mapping import PoolMapping
from repro.profiling.events import AllocationEvent, EventKind, alloc, free
from repro.profiling.metrics import (
    METRICS,
    MetricSet,
    improvement_factor,
    metric_keys,
    metric_spec,
    percent_decrease,
)
from repro.profiling.profiler import Profiler, ProfilerOptions, profile_trace
from repro.profiling.tracer import AllocationTrace, TraceError


class TestEvents:
    def test_alloc_constructor(self):
        event = alloc(3, 128, timestamp=7, tag="pkt")
        assert event.is_alloc and not event.is_free
        assert event.size == 128
        assert event.request_id == 3

    def test_free_constructor(self):
        event = free(3, timestamp=9)
        assert event.is_free
        assert event.size == 0

    def test_alloc_requires_positive_size(self):
        with pytest.raises(ValueError):
            alloc(1, 0)

    def test_free_must_not_carry_size(self):
        with pytest.raises(ValueError):
            AllocationEvent(EventKind.FREE, 1, size=8)

    def test_negative_ids_and_timestamps_rejected(self):
        with pytest.raises(ValueError):
            alloc(-1, 8)
        with pytest.raises(ValueError):
            alloc(1, 8, timestamp=-1)


class TestTraceValidation:
    def test_valid_trace(self):
        trace = AllocationTrace([alloc(0, 8, 0), free(0, 1)])
        trace.validate()

    def test_free_before_alloc_rejected(self):
        trace = AllocationTrace([free(0, 0)])
        with pytest.raises(TraceError):
            trace.validate()

    def test_double_free_rejected(self):
        trace = AllocationTrace([alloc(0, 8, 0), free(0, 1), free(0, 2)])
        with pytest.raises(TraceError):
            trace.validate()

    def test_duplicate_alloc_rejected(self):
        trace = AllocationTrace([alloc(0, 8, 0), alloc(0, 8, 1)])
        with pytest.raises(TraceError):
            trace.validate()

    def test_backwards_timestamps_rejected(self):
        trace = AllocationTrace([alloc(0, 8, 5), alloc(1, 8, 3)])
        with pytest.raises(TraceError):
            trace.validate()


class TestTraceStatistics:
    def make_trace(self):
        return AllocationTrace(
            [
                alloc(0, 100, 0),
                alloc(1, 50, 1),
                free(0, 2),
                alloc(2, 100, 3),
                free(1, 4),
                free(2, 5),
            ],
            name="t",
        )

    def test_summary(self):
        summary = self.make_trace().summary()
        assert summary.alloc_count == 3
        assert summary.free_count == 3
        assert summary.total_requested_bytes == 250
        assert summary.peak_live_bytes == 150
        assert summary.peak_live_blocks == 2
        assert summary.leaked_blocks == 0
        assert summary.max_size == 100
        assert summary.min_size == 50

    def test_size_histogram(self):
        histogram = self.make_trace().size_histogram()
        assert histogram[100] == 2
        assert histogram[50] == 1

    def test_hot_sizes(self):
        assert self.make_trace().hot_sizes(1) == [100]
        with pytest.raises(ValueError):
            self.make_trace().hot_sizes(0)

    def test_live_profile_never_negative_and_ends_at_zero(self):
        profile = self.make_trace().live_profile()
        assert all(live >= 0 for _ts, live in profile)
        assert profile[-1][1] == 0

    def test_slice(self):
        partial = self.make_trace().slice(0, 2)
        assert len(partial) == 2


class TestMetrics:
    def test_metric_registry(self):
        assert set(metric_keys()) == set(METRICS)
        assert metric_spec("accesses").lower_is_better
        with pytest.raises(KeyError):
            metric_spec("latency")

    def test_metric_set_values(self):
        metrics = MetricSet(accesses=10, footprint=20, energy_nj=3.5, cycles=40)
        assert metrics.value("accesses") == 10
        assert metrics.values(["footprint", "cycles"]) == (20, 40)
        with pytest.raises(KeyError):
            metrics.value("bogus")

    def test_metric_set_round_trip(self):
        metrics = MetricSet(accesses=10, footprint=20, energy_nj=3.5, cycles=40)
        assert MetricSet.from_dict(metrics.as_dict()) == metrics

    def test_improvement_factor(self):
        assert improvement_factor(100, 25) == 4.0
        assert improvement_factor(0, 0) == 1.0
        assert improvement_factor(10, 0) == float("inf")
        with pytest.raises(ValueError):
            improvement_factor(-1, 1)

    def test_percent_decrease(self):
        assert percent_decrease(100, 25) == 75.0
        assert percent_decrease(0, 0) == 0.0


def build_profiling_setup(scratchpad_reservation=16384):
    hierarchy = embedded_two_level()
    mapping = PoolMapping(hierarchy)
    mapping.place_pool("hot", "l1_scratchpad", scratchpad_reservation)
    mapping.place_pool("general", "main_memory")
    hot = FixedSizePool("hot", 64, strict=True, address_space=mapping.address_space_for("hot"))
    general = GeneralPool("general", address_space=mapping.address_space_for("general"))
    allocator = ComposedAllocator([hot, general], name="setup")
    return allocator, mapping, hierarchy


class TestProfiler:
    def make_trace(self, count=50):
        events = []
        for i in range(count):
            events.append(alloc(i, 64 if i % 2 == 0 else 200, timestamp=i))
        for i in range(count):
            events.append(free(i, timestamp=count + i))
        return AllocationTrace(events, name="synthetic")

    def test_profile_produces_all_metrics(self):
        allocator, mapping, hierarchy = build_profiling_setup()
        trace = self.make_trace()
        result = profile_trace(allocator, trace, mapping, configuration_id="cfg")
        assert result.totals.accesses > 0
        assert result.totals.footprint > 0
        assert result.totals.energy_nj > 0
        assert result.totals.cycles > 0
        assert result.operation_count == len(trace)
        assert result.leaked_blocks == 0

    def test_per_level_breakdown_covers_hierarchy(self):
        allocator, mapping, hierarchy = build_profiling_setup()
        result = profile_trace(allocator, self.make_trace(), mapping)
        assert set(result.per_level) == set(hierarchy.module_names())

    def test_per_pool_breakdown(self):
        allocator, mapping, _ = build_profiling_setup()
        result = profile_trace(allocator, self.make_trace(), mapping)
        assert "hot" in result.per_pool
        assert result.per_pool["hot"]["module"] == "l1_scratchpad"

    def test_accesses_metric_excludes_payload(self):
        allocator, mapping, _ = build_profiling_setup()
        trace = self.make_trace()
        heavy = Profiler(mapping, options=ProfilerOptions(payload_access_factor=100.0))
        light_allocator, light_mapping, _ = build_profiling_setup()
        light = Profiler(light_mapping, options=ProfilerOptions(payload_access_factor=0.0))
        heavy_result = heavy.run(allocator, trace)
        light_result = light.run(light_allocator, trace)
        # Allocator metadata accesses are identical regardless of how much
        # the application touches its payloads.
        assert heavy_result.totals.accesses == light_result.totals.accesses
        assert heavy_result.totals.energy_nj > light_result.totals.energy_nj

    def test_oom_failures_recorded_not_raised(self):
        hierarchy = embedded_two_level(main_size=4096)
        mapping = PoolMapping(hierarchy)
        mapping.place_pool("general", "main_memory")
        general = GeneralPool("general", address_space=mapping.address_space_for("general"))
        allocator = ComposedAllocator([general])
        events = [alloc(i, 1024, timestamp=i) for i in range(10)]
        trace = AllocationTrace(events, name="oom")
        result = profile_trace(allocator, trace, mapping)
        assert result.per_pool["__profile__"]["oom_failures"] > 0

    def test_oom_raises_when_requested(self):
        hierarchy = embedded_two_level(main_size=4096)
        mapping = PoolMapping(hierarchy)
        mapping.place_pool("general", "main_memory")
        general = GeneralPool("general", address_space=mapping.address_space_for("general"))
        allocator = ComposedAllocator([general])
        events = [alloc(i, 1024, timestamp=i) for i in range(10)]
        trace = AllocationTrace(events, name="oom")
        profiler = Profiler(mapping, options=ProfilerOptions(fail_on_oom=True))
        with pytest.raises(Exception):
            profiler.run(allocator, trace)

    def test_footprint_timeline(self):
        allocator, mapping, _ = build_profiling_setup()
        profiler = Profiler(mapping, options=ProfilerOptions(track_footprint_timeline=True))
        result = profiler.run(allocator, self.make_trace(10))
        assert result.per_pool["__profile__"]["footprint_timeline_points"] == 20
        assert len(result.per_pool["__timeline__"]) == 20

    def test_scratchpad_mapping_lowers_energy(self):
        trace = self.make_trace()
        hot_allocator, hot_mapping, _ = build_profiling_setup()
        hot_result = profile_trace(hot_allocator, trace, hot_mapping)

        hierarchy = embedded_two_level()
        cold_mapping = PoolMapping(hierarchy)
        cold_mapping.place_pool("hot", "main_memory", 16384)
        cold_mapping.place_pool("general", "main_memory")
        hot_pool = FixedSizePool(
            "hot", 64, strict=True, address_space=cold_mapping.address_space_for("hot")
        )
        general = GeneralPool("general", address_space=cold_mapping.address_space_for("general"))
        cold_allocator = ComposedAllocator([hot_pool, general])
        cold_result = profile_trace(cold_allocator, trace, cold_mapping)

        assert hot_result.totals.energy_nj < cold_result.totals.energy_nj
        assert hot_result.totals.cycles < cold_result.totals.cycles

    def test_energy_model_override(self):
        allocator, mapping, hierarchy = build_profiling_setup()
        expensive = EnergyModel(hierarchy, cpu_overhead_cycles=10_000)
        result = profile_trace(
            allocator, self.make_trace(), mapping, energy_model=expensive
        )
        cheap_allocator, cheap_mapping, cheap_hierarchy = build_profiling_setup()
        cheap = EnergyModel(cheap_hierarchy, cpu_overhead_cycles=1)
        cheap_result = profile_trace(
            cheap_allocator, self.make_trace(), cheap_mapping, energy_model=cheap
        )
        assert result.totals.cycles > cheap_result.totals.cycles
