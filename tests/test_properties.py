"""Property-based tests (hypothesis) on core invariants.

Four families of invariants:

* allocator correctness: no double-hand-out of live addresses, footprint is
  always at least the live gross bytes, accounting balances after any legal
  alloc/free sequence — for every pool type and policy combination;
* Pareto extraction: front members are mutually non-dominated and every
  non-member is dominated by some member;
* parameter spaces: enumeration size equals the product of array lengths,
  ``point_at``/``index_of`` are inverse bijections;
* round-trips: traces and profiling logs survive write/parse cycles.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.allocator.blocks import gross_block_size
from repro.allocator.coalescing import coalescing_policy_names
from repro.allocator.composed import ComposedAllocator
from repro.allocator.fit import fit_policy_names
from repro.allocator.freelist import free_list_policy_names
from repro.allocator.pool import FixedSizePool, GeneralPool
from repro.allocator.splitting import splitting_policy_names
from repro.core.pareto import dominates, non_dominated, pareto_rank
from repro.core.parameters import ParameterSpace
from repro.profiling.events import alloc, free
from repro.profiling.logformat import log_to_string
from repro.profiling.metrics import LevelMetrics, MetricSet, ProfileResult
from repro.profiling.parser import parse_log_text
from repro.profiling.tracer import AllocationTrace
from repro.workloads.traces import load_trace, round_trip_equal, save_trace

# ---------------------------------------------------------------------------
# Allocator invariants
# ---------------------------------------------------------------------------

#: An operation script: each entry is (size, free_after_n_more_ops).
operation_scripts = st.lists(
    st.tuples(st.integers(min_value=1, max_value=2048), st.integers(0, 10)),
    min_size=1,
    max_size=60,
)

policy_combinations = st.tuples(
    st.sampled_from(free_list_policy_names()),
    st.sampled_from(fit_policy_names()),
    st.sampled_from(coalescing_policy_names()),
    st.sampled_from(splitting_policy_names()),
)


def run_script(pool, script):
    """Replay an allocation script; returns the set of live addresses."""
    live = []
    for step, (size, hold) in enumerate(script):
        address = pool.allocate(size)
        live.append((address, step + hold))
        still_live = []
        for entry in live:
            if entry[1] <= step:
                pool.free(entry[0])
            else:
                still_live.append(entry)
        live = still_live
    return {address for address, _ in live}


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=operation_scripts, policies=policy_combinations)
def test_general_pool_invariants(script, policies):
    free_list, fit, coalescing, splitting = policies
    pool = GeneralPool(
        "prop",
        free_list=free_list,
        fit=fit,
        coalescing=coalescing,
        splitting=splitting,
        chunk_size=1024,
    )
    live_addresses = run_script(pool, script)
    # Live bookkeeping matches the script's surviving allocations.
    assert pool.live_blocks == len(live_addresses)
    # The pool never hands out more memory than it reserved.
    assert pool.stats.live_gross <= pool.stats.footprint
    # Footprint never exceeds its own peak.
    assert pool.stats.footprint <= pool.stats.peak_footprint
    # Accounting balances.
    assert pool.stats.alloc_ops - pool.stats.free_ops == pool.live_blocks
    # Live blocks never overlap.
    blocks = sorted(pool._live.values(), key=lambda block: block.address)
    for first, second in zip(blocks, blocks[1:]):
        assert first.end <= second.address


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=80),
)
def test_fixed_pool_unique_addresses(sizes):
    pool = FixedSizePool("prop", 64)
    addresses = [pool.allocate(size) for size in sizes]
    # No address handed out twice while live.
    assert len(set(addresses)) == len(addresses)
    for address in addresses:
        pool.free(address)
    assert pool.live_blocks == 0
    assert pool.stats.live_payload == 0


@settings(max_examples=25, deadline=None)
@given(script=operation_scripts, policies=policy_combinations)
def test_composed_allocator_invariants(script, policies):
    free_list, fit, coalescing, splitting = policies
    dedicated = FixedSizePool("d64", 64, strict=True)
    general = GeneralPool(
        "general", free_list=free_list, fit=fit, coalescing=coalescing, splitting=splitting
    )
    allocator = ComposedAllocator([dedicated, general])
    live = []
    for step, (size, hold) in enumerate(script):
        address = allocator.malloc(size)
        live.append((address, step + hold))
        survivors = []
        for entry in live:
            if entry[1] <= step:
                allocator.free(entry[0])
            else:
                survivors.append(entry)
        live = survivors
    assert allocator.live_blocks == len(live)
    assert allocator.total_footprint >= sum(
        gross_block_size(1) for _ in live
    ) or not live
    # 64-byte requests must be served by the dedicated pool first.
    if any(size == 64 for size, _hold in script):
        assert allocator.pool_named("d64").stats.alloc_ops > 0


# ---------------------------------------------------------------------------
# Pareto invariants
# ---------------------------------------------------------------------------

metric_vectors = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=100, deadline=None)
@given(vectors=metric_vectors)
def test_pareto_front_is_mutually_non_dominated(vectors):
    front = non_dominated(vectors)
    for i in front:
        for j in front:
            assert not dominates(vectors[i], vectors[j])


@settings(max_examples=100, deadline=None)
@given(vectors=metric_vectors)
def test_every_non_member_is_dominated(vectors):
    front = set(non_dominated(vectors))
    for index, vector in enumerate(vectors):
        if index in front:
            continue
        assert any(dominates(vectors[member], vector) for member in front)


@settings(max_examples=50, deadline=None)
@given(vectors=metric_vectors)
def test_pareto_rank_zero_matches_front(vectors):
    ranks = pareto_rank(vectors)
    front = set(non_dominated(vectors))
    assert {index for index, rank in enumerate(ranks) if rank == 0} == front


@settings(max_examples=50, deadline=None)
@given(vectors=metric_vectors)
def test_adding_a_dominated_point_does_not_change_the_front(vectors):
    front_before = {tuple(vectors[i]) for i in non_dominated(vectors)}
    worst = tuple(max(v[d] for v in vectors) + 1 for d in range(3))
    front_after = {
        tuple((vectors + [worst])[i]) for i in non_dominated(vectors + [worst])
    }
    assert front_before == front_after


# ---------------------------------------------------------------------------
# Parameter-space invariants
# ---------------------------------------------------------------------------

parameter_arrays = st.lists(
    st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=4, unique=True),
    min_size=1,
    max_size=4,
)


@settings(max_examples=60, deadline=None)
@given(arrays=parameter_arrays)
def test_space_size_is_product_of_array_lengths(arrays):
    space = ParameterSpace()
    for index, values in enumerate(arrays):
        space.add_array(f"p{index}", values)
    expected = 1
    for values in arrays:
        expected *= len(values)
    assert space.size() == expected
    assert len(list(space.points())) == expected


@settings(max_examples=60, deadline=None)
@given(arrays=parameter_arrays, data=st.data())
def test_point_at_and_index_of_are_inverse(arrays, data):
    space = ParameterSpace()
    for index, values in enumerate(arrays):
        space.add_array(f"p{index}", values)
    index = data.draw(st.integers(min_value=0, max_value=space.size() - 1))
    point = space.point_at(index)
    assert space.index_of(point) == index
    space.validate_point(point)


# ---------------------------------------------------------------------------
# Round-trip invariants
# ---------------------------------------------------------------------------


@st.composite
def valid_traces(draw):
    """Generate well-formed traces (every free follows its alloc)."""
    count = draw(st.integers(min_value=1, max_value=30))
    events = []
    timestamp = 0
    live = []
    for request_id in range(count):
        size = draw(st.integers(min_value=1, max_value=4096))
        events.append(alloc(request_id, size, timestamp))
        live.append(request_id)
        timestamp += 1
        if live and draw(st.booleans()):
            victim = live.pop(draw(st.integers(min_value=0, max_value=len(live) - 1)))
            events.append(free(victim, timestamp))
            timestamp += 1
    for victim in live:
        events.append(free(victim, timestamp))
    return AllocationTrace(events, name="prop")


@settings(max_examples=40, deadline=None)
@given(trace=valid_traces())
def test_generated_traces_are_valid(trace):
    trace.validate()
    summary = trace.summary()
    assert summary.leaked_blocks == 0
    assert summary.alloc_count == summary.free_count


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(trace=valid_traces())
def test_trace_file_round_trip(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "trace.txt"
    save_trace(trace, path)
    assert round_trip_equal(trace, load_trace(path))


@settings(max_examples=40, deadline=None)
@given(
    accesses=st.integers(min_value=0, max_value=10**9),
    footprint=st.integers(min_value=0, max_value=10**9),
    energy=st.floats(min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False),
    cycles=st.integers(min_value=0, max_value=10**12),
)
def test_profiling_log_round_trip(accesses, footprint, energy, cycles):
    result = ProfileResult(configuration_id="cfg", trace_name="t")
    result.totals = MetricSet(
        accesses=accesses, footprint=footprint, energy_nj=energy, cycles=cycles
    )
    result.per_level["main_memory"] = LevelMetrics(
        "main_memory", reads=accesses // 2, writes=accesses - accesses // 2,
        footprint=footprint, energy_nj=energy,
    )
    parsed = parse_log_text(log_to_string([result]))
    restored = parsed.result_for("cfg")
    assert restored.totals.accesses == accesses
    assert restored.totals.footprint == footprint
    assert restored.totals.cycles == cycles
    assert abs(restored.totals.energy_nj - energy) <= max(1e-6, energy * 1e-6)
