"""Unit tests for reporting, ASCII plots, CSV/gnuplot export and the dashboard."""

import pytest

from repro.core.exploration import ExplorationEngine
from repro.core.reporting import (
    describe_record,
    exploration_report,
    format_metric_value,
    pareto_listing,
    tradeoff_table,
)
from repro.core.space import smoke_parameter_space
from repro.core.tradeoff import TradeoffAnalysis
from repro.gui.ascii_plots import histogram, pareto_plot, scatter_plot
from repro.gui.excel import (
    export_all_configurations,
    export_pareto_configurations,
    export_tradeoff_summary,
    export_workbook,
)
from repro.gui.gnuplot import export_gnuplot, write_gnuplot_data, write_gnuplot_script
from repro.gui.report import dashboard, export_artifacts
from repro.workloads.easyport import EasyportWorkload


@pytest.fixture(scope="module")
def database():
    trace = EasyportWorkload(packets=150).generate(seed=6)
    return ExplorationEngine(smoke_parameter_space(), trace).explore()


class TestFormatting:
    def test_format_metric_value_units(self):
        assert format_metric_value("footprint", 512) == "512 B"
        assert "KB" in format_metric_value("footprint", 4096)
        assert "MB" in format_metric_value("footprint", 4 << 20)
        assert "nJ" in format_metric_value("energy_nj", 12.0)
        assert "uJ" in format_metric_value("energy_nj", 12_000.0)
        assert "mJ" in format_metric_value("energy_nj", 12_000_000.0)
        assert "k" in format_metric_value("accesses", 12_000)
        assert "M" in format_metric_value("cycles", 12_000_000)

    def test_describe_record(self, database):
        text = describe_record(database[0])
        assert database[0].configuration_id in text
        assert "accesses=" in text


class TestReports:
    def test_tradeoff_table_has_all_metrics(self, database):
        table = tradeoff_table(TradeoffAnalysis(database))
        for key in ("accesses", "footprint", "energy_nj", "cycles"):
            assert key in table

    def test_pareto_listing_counts(self, database):
        analysis = TradeoffAnalysis(database)
        listing = pareto_listing(analysis)
        assert f"({analysis.pareto_count})" in listing

    def test_exploration_report_structure(self, database):
        report = exploration_report(database, title="Easyport smoke")
        assert "Easyport smoke" in report
        assert "Pareto-optimal configurations" in report
        assert "knee point" in report


class TestAsciiPlots:
    def test_scatter_plot_contains_points(self):
        plot = scatter_plot([(1, 1), (2, 2), (3, 1)], width=20, height=8)
        assert plot.count(".") >= 2
        assert "legend" in plot

    def test_pareto_plot_highlights_front(self):
        plot = pareto_plot([(1, 3), (2, 2), (3, 1), (3, 3)], width=20, height=8)
        assert "*" in plot

    def test_empty_points(self):
        assert "no points" in scatter_plot([])
        assert "no points" in pareto_plot([])

    def test_plot_size_validation(self):
        with pytest.raises(ValueError):
            scatter_plot([(1, 1)], width=5, height=2)

    def test_histogram(self):
        text = histogram({64: 10, 128: 5})
        assert "64" in text and "#" in text
        assert histogram({}) == "(empty histogram)"


class TestCsvExports:
    def test_export_all(self, tmp_path, database):
        path = tmp_path / "all.csv"
        rows = export_all_configurations(database, path)
        assert rows == len(database)
        assert path.read_text().count("\n") == rows + 1

    def test_export_pareto(self, tmp_path, database):
        path = tmp_path / "pareto.csv"
        rows = export_pareto_configurations(database, path)
        assert rows == len(database.pareto_records())
        header = path.read_text().splitlines()[0]
        assert "configuration_id" in header and "accesses" in header

    def test_export_tradeoff(self, tmp_path, database):
        path = tmp_path / "tradeoff.csv"
        rows = export_tradeoff_summary(database, path)
        assert rows == 4
        assert "overall_range_factor" in path.read_text()

    def test_export_workbook(self, tmp_path, database):
        paths = export_workbook(database, tmp_path / "out")
        assert set(paths) == {"all", "pareto", "tradeoff"}
        for path in paths.values():
            assert path.exists()


class TestGnuplotExport:
    def test_data_file_row_count_and_flags(self, tmp_path, database):
        path = tmp_path / "data.dat"
        rows = write_gnuplot_data(database, path)
        lines = path.read_text().splitlines()
        assert rows == len(database)
        assert lines[0].startswith("#")
        flags = {line.split()[-1] for line in lines[1:]}
        assert flags <= {"0", "1"}
        assert "1" in flags

    def test_script_references_columns(self, tmp_path, database):
        data = tmp_path / "data.dat"
        script = tmp_path / "plot.gp"
        write_gnuplot_data(database, data)
        text = write_gnuplot_script(data, script, x_metric="accesses", y_metric="footprint")
        assert "plot" in text
        assert str(data) in text
        assert script.exists()

    def test_script_rejects_unknown_metric(self, tmp_path, database):
        data = tmp_path / "data.dat"
        write_gnuplot_data(database, data)
        with pytest.raises(ValueError):
            write_gnuplot_script(data, tmp_path / "p.gp", x_metric="latency")

    def test_export_gnuplot_bundle(self, tmp_path, database):
        data_path, script_path = export_gnuplot(database, tmp_path / "plots")
        assert data_path.exists() and script_path.exists()


class TestDashboard:
    def test_dashboard_combines_report_and_plot(self, database):
        text = dashboard(database, title="Smoke dashboard")
        assert "Smoke dashboard" in text
        assert "Pareto-optimal" in text
        assert "+" in text  # the plot frame

    def test_export_artifacts(self, tmp_path, database):
        paths = export_artifacts(database, tmp_path / "artifacts")
        assert {"all", "pareto", "tradeoff", "gnuplot_data", "gnuplot_script"} <= set(paths)
        for path in paths.values():
            assert path.exists()
