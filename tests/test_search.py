"""Unit tests for the heuristic search strategies (repro.core.search)."""

import pytest

from repro.core.exploration import ExplorationEngine
from repro.core.pareto import dominates
from repro.core.search import (
    EvolutionarySearch,
    HillClimbSearch,
    RandomSearch,
    SearchBudget,
)
from repro.core.space import compact_parameter_space, smoke_parameter_space
from repro.workloads.easyport import EasyportWorkload
from repro.workloads.synthetic import UniformRandomWorkload


@pytest.fixture(scope="module")
def engine():
    trace = EasyportWorkload(packets=150).generate(seed=5)
    return ExplorationEngine(compact_parameter_space(), trace)


@pytest.fixture(scope="module")
def exhaustive_reference():
    trace = EasyportWorkload(packets=150).generate(seed=5)
    engine = ExplorationEngine(smoke_parameter_space(), trace)
    return engine, engine.explore()


class TestSearchBudget:
    def test_positive_budget_required(self):
        with pytest.raises(ValueError):
            SearchBudget(evaluations=0)


class TestRandomSearch:
    def test_respects_budget(self, engine):
        database = RandomSearch(engine, SearchBudget(evaluations=10, seed=1)).run()
        assert len(database) == 10

    def test_deterministic_for_seed(self, engine):
        first = RandomSearch(engine, SearchBudget(evaluations=8, seed=2)).run()
        second = RandomSearch(engine, SearchBudget(evaluations=8, seed=2)).run()
        assert [r.parameters for r in first] == [r.parameters for r in second]

    def test_budget_capped_at_space_size(self, exhaustive_reference):
        engine, _ = exhaustive_reference
        database = RandomSearch(engine, SearchBudget(evaluations=1000, seed=0)).run()
        assert len(database) == engine.space.size()


class TestHillClimbSearch:
    def test_respects_budget(self, engine):
        search = HillClimbSearch(engine, SearchBudget(evaluations=12, seed=3))
        database = search.run()
        assert 1 <= len(database) <= 12
        assert search.evaluations_used <= 12

    def test_finds_a_reasonable_configuration(self, exhaustive_reference):
        engine, exhaustive = exhaustive_reference
        search = HillClimbSearch(engine, SearchBudget(evaluations=6, seed=4))
        database = search.run()
        best_found = min(record.metrics.accesses for record in database)
        worst_exhaustive = max(record.metrics.accesses for record in exhaustive)
        assert best_found <= worst_exhaustive


class TestEvolutionarySearch:
    def test_respects_budget(self, engine):
        search = EvolutionarySearch(
            engine, SearchBudget(evaluations=20, seed=5), population=6, offspring=6
        )
        database = search.run()
        assert len(database) <= 20

    def test_front_quality_not_worse_than_random(self, engine):
        budget = 24
        random_db = RandomSearch(engine, SearchBudget(evaluations=budget, seed=6)).run()
        evo_db = EvolutionarySearch(
            engine, SearchBudget(evaluations=budget, seed=6), population=6, offspring=6
        ).run()
        # The evolutionary front must not be strictly dominated by the random
        # front on the accesses/footprint plane.
        evo_front = evo_db.pareto_records(["accesses", "footprint"])
        random_front = random_db.pareto_records(["accesses", "footprint"])
        assert evo_front
        fully_dominated = all(
            any(
                dominates(r.metric_vector(["accesses", "footprint"]),
                          e.metric_vector(["accesses", "footprint"]))
                for r in random_front
            )
            for e in evo_front
        )
        assert not fully_dominated

    def test_invalid_population(self, engine):
        with pytest.raises(ValueError):
            EvolutionarySearch(engine, population=1, offspring=0)


class TestSearchInternals:
    def test_mutation_changes_exactly_one_or_zero_parameters(self, engine):
        search = RandomSearch(engine, SearchBudget(evaluations=1, seed=7))
        point = engine.space.point_at(0)
        mutated = search._mutate(point)
        differing = [name for name in point if point[name] != mutated[name]]
        assert len(differing) <= 1
        engine.space.validate_point(mutated)

    def test_crossover_produces_valid_point(self, engine):
        search = RandomSearch(engine, SearchBudget(evaluations=1, seed=8))
        first = engine.space.point_at(0)
        second = engine.space.point_at(engine.space.size() - 1)
        child = search._crossover(first, second)
        engine.space.validate_point(child)
        for name, value in child.items():
            assert value in (first[name], second[name])

    def test_memoisation_avoids_duplicate_evaluations(self, exhaustive_reference):
        engine, _ = exhaustive_reference
        search = RandomSearch(engine, SearchBudget(evaluations=4, seed=9))
        database = search.run()
        point = database[0].parameters
        before = search.evaluations_used
        search._evaluate(point, database)
        assert search.evaluations_used == before


class TestDominancePruning:
    """Acceptance: pruning skips >0 evaluations on the standard (compact)
    space without changing the final Pareto front."""

    def _run(self, prune, seed=3):
        trace = UniformRandomWorkload(operations=300).generate(seed=7)
        engine = ExplorationEngine(compact_parameter_space(), trace)
        search = RandomSearch(
            engine, SearchBudget(evaluations=64, seed=seed), prune=prune
        )
        return search, search.run()

    def test_pruned_front_equals_unpruned_front_with_skips(self):
        # Random search draws the identical candidate sample with and
        # without pruning, so front preservation is exactly testable.
        trace = UniformRandomWorkload(operations=300).generate(seed=7)
        for seed in (0, 3):
            results = {}
            for prune in (False, True):
                engine = ExplorationEngine(compact_parameter_space(), trace)
                search = RandomSearch(
                    engine, SearchBudget(evaluations=64, seed=seed), prune=prune
                )
                database = search.run()
                results[prune] = (search, database)
            unpruned_front = sorted(
                r.configuration_id for r in results[False][1].pareto_records()
            )
            pruned_search, pruned_db = results[True]
            pruned_front = sorted(
                r.configuration_id for r in pruned_db.pareto_records()
            )
            assert pruned_front == unpruned_front
            assert pruned_search.prune_skipped > 0
            assert pruned_search.prune_predicted > 0
            assert len(pruned_db) < len(results[False][1])

    def test_counters_surface_on_database_summary_json_and_report(self, tmp_path):
        search, database = self._run(prune=True)
        assert database.prune_skipped == search.prune_skipped > 0
        assert database.prune_predicted == search.prune_predicted > 0
        summary = database.summary()
        assert summary["pruning"] == {
            "skipped": search.prune_skipped,
            "predicted": search.prune_predicted,
            "surrogate": search.surrogate_skips,
        }
        # Surrogate (quorum) skips are a subset of all skips.
        assert 0 <= search.surrogate_skips <= search.prune_skipped
        assert database.surrogate_skips == search.surrogate_skips
        path = tmp_path / "db.json"
        database.to_json(path)
        from repro.core.results import ResultDatabase

        loaded = ResultDatabase.from_json(path)
        assert loaded.prune_skipped == search.prune_skipped
        assert loaded.prune_predicted == search.prune_predicted
        assert loaded.surrogate_skips == search.surrogate_skips
        from repro.core.reporting import exploration_report

        report = exploration_report(database)
        assert (
            f"Dominance pruning: {search.prune_skipped} of "
            f"{search.prune_predicted} predicted candidates skipped"
        ) in report

    def test_no_pruning_means_no_counters(self):
        search, database = self._run(prune=False)
        assert search.prune_skipped == 0
        assert search.prune_predicted == 0
        assert "pruning" not in database.summary()

    def test_known_points_are_never_predicted(self, exhaustive_reference):
        # Every smoke-space point is memoised by the shared engine, so a
        # pruning search over the same space must not spend predictions.
        engine, _ = exhaustive_reference
        search = RandomSearch(engine, SearchBudget(evaluations=8, seed=2), prune=True)
        search.run()
        assert search.prune_predicted == 0
        assert search.prune_skipped == 0

    def test_invalid_prune_fraction_rejected(self, engine):
        with pytest.raises(ValueError):
            RandomSearch(engine, SearchBudget(evaluations=4), prune=True, prune_fraction=1.5)

    def test_predict_point_is_a_lower_bound(self, engine):
        # Metric accumulation over the trace is monotone, so the prefix
        # vector must never exceed the full vector on any objective.
        for index in (0, 17, 63):
            point = engine.space.point_at(index)
            record = engine.evaluate_point(point)
            partial, _oom = engine.predict_point(point, fraction=0.25)
            full = record.metric_vector()
            assert all(p <= f for p, f in zip(partial, full)), (partial, full)
