"""Unit tests for sharded exhaustive exploration and artefact merging.

Covers the deterministic shard partition (`ShardSpec`), the acceptance
criterion that merging the artefacts of a disjoint shard partition
reproduces the single-run exhaustive database byte-identically, and the
`merge` validation paths (mismatched fingerprints, spaces, overlapping
shards, missing provenance).
"""

import pytest

from repro.core.exploration import (
    ExplorationEngine,
    ExplorationSettings,
    ShardSpec,
)
from repro.core.results import Provenance, ResultDatabase
from repro.core.space import smoke_parameter_space
from repro.core.store import MergeError, ResultStore, load_and_merge, merge_databases
from repro.workloads.synthetic import FixedSizesWorkload, UniformRandomWorkload


@pytest.fixture(scope="module")
def small_trace():
    return UniformRandomWorkload(operations=300).generate(seed=7)


def explore_shard(trace, shard=None, sample=None):
    settings = ExplorationSettings(shard=shard, sample=sample)
    return ExplorationEngine(smoke_parameter_space(), trace, settings=settings).explore()


class TestShardSpec:
    def test_parse(self):
        spec = ShardSpec.parse("2/3")
        assert (spec.index, spec.count) == (2, 3)
        assert spec.label == "2/3"

    @pytest.mark.parametrize("text", ["", "2", "2/", "/3", "a/b", "1/2/3", "0/3", "4/3"])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            ShardSpec.parse(text)

    def test_partition_is_exact(self):
        total = 17
        owned = [
            position
            for k in (1, 2, 3)
            for position in range(total)
            if ShardSpec(k, 3).owns(position)
        ]
        assert sorted(owned) == list(range(total))
        assert sum(ShardSpec(k, 3).size_of(total) for k in (1, 2, 3)) == total

    def test_single_shard_owns_everything(self):
        spec = ShardSpec(1, 1)
        assert all(spec.owns(i) for i in range(10))


class TestShardedExploration:
    def test_shard_sizes_sum_to_space(self, small_trace):
        total = smoke_parameter_space().size()
        shards = [explore_shard(small_trace, shard=ShardSpec(k, 3)) for k in (1, 2, 3)]
        assert sum(len(shard) for shard in shards) == total

    def test_shard_keeps_global_labels(self, small_trace):
        database = explore_shard(small_trace, shard=ShardSpec(2, 3))
        space = smoke_parameter_space()
        for record in database:
            index = space.index_of(record.parameters)
            assert record.configuration.label == f"cfg{index:05d}"

    def test_shard_provenance(self, small_trace):
        database = explore_shard(small_trace, shard=ShardSpec(2, 3))
        assert database.provenance is not None
        assert database.provenance.shard == "2/3"
        assert database.provenance.space == smoke_parameter_space().as_dict()

    def test_sharded_sampling(self, small_trace):
        full = explore_shard(small_trace, sample=6)
        shards = [
            explore_shard(small_trace, shard=ShardSpec(k, 2), sample=6) for k in (1, 2)
        ]
        assert sum(len(shard) for shard in shards) == len(full)
        merged = merge_databases(shards)
        assert [r.configuration_id for r in merged] == [
            r.configuration_id for r in full
        ]


class TestMerge:
    def test_merge_reproduces_single_run_byte_identically(self, tmp_path, small_trace):
        """Acceptance: merge of 3 disjoint shards == one exhaustive run."""
        full = explore_shard(small_trace)
        full_path = tmp_path / "full.json"
        full.to_json(full_path)

        shard_paths = []
        for k in (1, 2, 3):
            database = explore_shard(small_trace, shard=ShardSpec(k, 3))
            path = tmp_path / f"shard{k}.json"
            database.to_json(path)
            shard_paths.append(path)

        merged = load_and_merge(shard_paths)
        merged_path = tmp_path / "merged.json"
        merged.to_json(merged_path)

        assert merged_path.read_bytes() == full_path.read_bytes()
        assert [r.configuration_id for r in merged.pareto_records()] == [
            r.configuration_id for r in full.pareto_records()
        ]

    def test_merge_order_is_input_order_independent(self, small_trace):
        shards = [explore_shard(small_trace, shard=ShardSpec(k, 3)) for k in (1, 2, 3)]
        forward = merge_databases(shards)
        backward = merge_databases(list(reversed(shards)), name=forward.name)
        assert [r.configuration_id for r in forward] == [
            r.configuration_id for r in backward
        ]

    def test_merge_rejects_empty_input(self):
        with pytest.raises(MergeError, match="nothing to merge"):
            merge_databases([])

    def test_merge_rejects_missing_provenance(self, small_trace):
        shard = explore_shard(small_trace, shard=ShardSpec(1, 2))
        naked = ResultDatabase(name="no-provenance")
        with pytest.raises(MergeError, match="no provenance"):
            merge_databases([shard, naked])

    def test_merge_rejects_mismatched_fingerprints(self, small_trace):
        """Shards of different workloads must not silently union."""
        a = explore_shard(small_trace, shard=ShardSpec(1, 2))
        other_trace = FixedSizesWorkload().generate(seed=7)
        b = explore_shard(other_trace, shard=ShardSpec(2, 2))
        with pytest.raises(MergeError, match="different workload"):
            merge_databases([a, b])

    def test_merge_rejects_mismatched_spaces(self, small_trace):
        a = explore_shard(small_trace, shard=ShardSpec(1, 2))
        b = explore_shard(small_trace, shard=ShardSpec(2, 2))
        b.provenance = Provenance(
            fingerprint=a.provenance.fingerprint,
            space={"num_dedicated_pools": [0, 1]},
            metric_version=a.provenance.metric_version,
        )
        with pytest.raises(MergeError, match="different parameter space"):
            merge_databases([a, b])

    def test_merge_rejects_mismatched_metric_versions(self, small_trace):
        a = explore_shard(small_trace, shard=ShardSpec(1, 2))
        b = explore_shard(small_trace, shard=ShardSpec(2, 2))
        b.provenance = Provenance(
            fingerprint=a.provenance.fingerprint,
            space=a.provenance.space,
            metric_version=a.provenance.metric_version + 1,
        )
        with pytest.raises(MergeError, match="incompatible"):
            merge_databases([a, b])

    def test_merge_rejects_overlapping_shards(self, small_trace):
        a = explore_shard(small_trace, shard=ShardSpec(1, 2))
        with pytest.raises(MergeError, match="overlap"):
            merge_databases([a, a])

    def test_merge_counts_are_summed(self, small_trace):
        shards = [explore_shard(small_trace, shard=ShardSpec(k, 3)) for k in (1, 2, 3)]
        merged = merge_databases(shards)
        assert merged.cache_misses == sum(shard.cache_misses for shard in shards)
        assert merged.provenance.shard == ""

    def test_merge_drops_store_counters(self, tmp_path, small_trace):
        """Store counters describe shard execution, not results: a partition
        run cold *with* per-shard stores still merges byte-identically with
        a plain (store-less) single run."""
        full_path = tmp_path / "full.json"
        explore_shard(small_trace).to_json(full_path)
        shards = []
        for k in (1, 2, 3):
            with ResultStore(tmp_path / f"store{k}.jsonl") as store:
                settings = ExplorationSettings(shard=ShardSpec(k, 3))
                engine = ExplorationEngine(
                    smoke_parameter_space(), small_trace, settings=settings, store=store
                )
                shards.append(engine.explore())
        assert all(shard.store_misses for shard in shards)
        merged = merge_databases(shards)
        assert (merged.store_hits, merged.store_misses, merged.store_loaded) == (0, 0, 0)
        merged_path = tmp_path / "merged.json"
        merged.to_json(merged_path)
        assert merged_path.read_bytes() == full_path.read_bytes()

    def test_partial_merge_is_allowed(self, small_trace):
        """Two of three shards merge fine — the union is just incomplete."""
        shards = [explore_shard(small_trace, shard=ShardSpec(k, 3)) for k in (1, 2)]
        merged = merge_databases(shards)
        assert len(merged) == sum(len(shard) for shard in shards)


class TestCLIShardMerge:
    def run_cli(self, argv):
        from repro.cli import main

        return main(argv)

    def base_args(self, out):
        return [
            "explore",
            "--workload",
            "uniform",
            "--space",
            "smoke",
            "--seed",
            "1",
            "--out",
            str(out),
        ]

    def test_cli_shard_merge_round_trip(self, tmp_path, capsys):
        paths = []
        for k in (1, 2, 3):
            out = tmp_path / f"shard{k}.json"
            assert self.run_cli(self.base_args(out) + ["--shard", f"{k}/3"]) == 0
            paths.append(out)
        full = tmp_path / "full.json"
        assert self.run_cli(self.base_args(full)) == 0
        merged = tmp_path / "merged.json"
        code = self.run_cli(
            ["merge", *map(str, paths), "--out", str(merged)]
        )
        assert code == 0
        assert "Pareto-optimal configurations after merge" in capsys.readouterr().out
        assert merged.read_bytes() == full.read_bytes()

    def test_cli_merge_rejects_incompatible(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert self.run_cli(self.base_args(a) + ["--shard", "1/2"]) == 0
        assert (
            self.run_cli(
                [
                    "explore",
                    "--workload",
                    "bursty",
                    "--space",
                    "smoke",
                    "--seed",
                    "1",
                    "--shard",
                    "2/2",
                    "--out",
                    str(b),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = self.run_cli(["merge", str(a), str(b), "--out", str(tmp_path / "m.json")])
        assert code == 2
        assert "different workload" in capsys.readouterr().err

    def test_cli_rejects_shard_with_heuristic_strategy(self, tmp_path, capsys):
        code = self.run_cli(
            self.base_args(tmp_path / "x.json")
            + ["--shard", "1/2", "--strategy", "random"]
        )
        assert code == 2
        assert "shard" in capsys.readouterr().err

    def test_cli_store_flag(self, tmp_path, capsys):
        store = tmp_path / "store.jsonl"
        out = tmp_path / "a.json"
        assert self.run_cli(self.base_args(out) + ["--store", str(store)]) == 0
        assert store.exists()
        capsys.readouterr()
        assert self.run_cli(self.base_args(out) + ["--store", str(store)]) == 0
        output = capsys.readouterr().out
        assert "0 profiled" in output
        assert "answered from the result store" in output

    def test_cli_store_open_failure_is_clean(self, tmp_path, capsys):
        """A bad --store path reports on stderr (exit 2), no traceback."""
        code = self.run_cli(
            self.base_args(tmp_path / "x.json") + ["--store", str(tmp_path)]
        )
        assert code == 2
        assert "cannot open result store" in capsys.readouterr().err

    def test_cli_heuristic_strategy(self, tmp_path):
        out = tmp_path / "h.json"
        code = self.run_cli(
            self.base_args(out) + ["--strategy", "random", "--budget", "5"]
        )
        assert code == 0
        database = ResultDatabase.from_json(out)
        assert 0 < len(database) <= 5
