"""Unit tests for the persistent result store (repro.core.store.ResultStore).

Covers the L1/L2 cache layering of the exploration engine, the incremental
("warm store") acceptance criterion — a second run over the same trace
performs zero fresh profiler evaluations — recovery from corrupt or
partially written store files, and concurrent-writer safety (parallel
shards on one host sharing a single store file).
"""

import json
import multiprocessing

import pytest

from repro.core.exploration import ExplorationEngine, ExplorationSettings
from repro.core.space import smoke_parameter_space
from repro.core.store import (
    METRIC_VERSION,
    ResultStore,
    StoreError,
    default_store_path,
)
from repro.workloads.synthetic import FixedSizesWorkload, UniformRandomWorkload


@pytest.fixture(scope="module")
def small_trace():
    return UniformRandomWorkload(operations=300).generate(seed=7)


def make_engine(trace, store):
    return ExplorationEngine(smoke_parameter_space(), trace, store=store)


class TestResultStore:
    def test_starts_empty(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        assert len(store) == 0
        assert store.loaded == 0
        assert store.corrupt_entries == 0

    def test_put_get_round_trip(self, tmp_path, small_trace):
        store = ResultStore(tmp_path / "store.jsonl")
        engine = make_engine(small_trace, store=None)
        point = engine.space.point_at(0)
        record = engine.run_point(point, label="cfg00000")
        assert store.put("fp", point, record) is True
        assert store.put("fp", point, record) is False  # already present
        fetched = store.get("fp", point)
        assert fetched is not None
        assert fetched.metrics == record.metrics
        assert fetched.configuration.label == record.configuration.label
        assert store.hits == 1

    def test_get_returns_fresh_objects(self, tmp_path, small_trace):
        store = ResultStore(tmp_path / "store.jsonl")
        engine = make_engine(small_trace, store=None)
        point = engine.space.point_at(0)
        store.put("fp", point, engine.run_point(point))
        first = store.get("fp", point)
        second = store.get("fp", point)
        assert first is not second
        first.index = 99
        assert second.index != 99

    def test_point_key_is_order_insensitive(self, tmp_path, small_trace):
        store = ResultStore(tmp_path / "store.jsonl")
        engine = make_engine(small_trace, store=None)
        point = engine.space.point_at(0)
        store.put("fp", point, engine.run_point(point))
        shuffled = dict(reversed(list(point.items())))
        assert store.get("fp", shuffled) is not None

    def test_fingerprint_isolates_entries(self, tmp_path, small_trace):
        store = ResultStore(tmp_path / "store.jsonl")
        engine = make_engine(small_trace, store=None)
        point = engine.space.point_at(0)
        store.put("fp-a", point, engine.run_point(point))
        assert store.get("fp-b", point) is None
        assert store.misses == 1

    def test_metric_version_isolates_entries(self, tmp_path, small_trace):
        path = tmp_path / "store.jsonl"
        engine = make_engine(small_trace, store=None)
        point = engine.space.point_at(0)
        old = ResultStore(path, metric_version=METRIC_VERSION)
        old.put("fp", point, engine.run_point(point))
        old.close()
        bumped = ResultStore(path, metric_version=METRIC_VERSION + 1)
        assert bumped.get("fp", point) is None
        # The stale entry is still on disk (rolling back revalidates it).
        assert bumped.loaded == 1

    def test_reload_across_processes(self, tmp_path, small_trace):
        path = tmp_path / "store.jsonl"
        engine = make_engine(small_trace, store=None)
        point = engine.space.point_at(1)
        with ResultStore(path) as writer:
            writer.put("fp", point, engine.run_point(point))
        reader = ResultStore(path)
        assert reader.loaded == 1
        assert reader.get("fp", point) is not None

    def test_directory_path_is_an_error(self, tmp_path):
        with pytest.raises(StoreError):
            ResultStore(tmp_path)

    def test_default_store_path_respects_xdg(self, monkeypatch, tmp_path):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        path = default_store_path()
        assert str(path).startswith(str(tmp_path))
        assert path.name == "results.jsonl"


class TestCorruptionRecovery:
    def put_one(self, path, trace, point_index=0):
        engine = make_engine(trace, store=None)
        point = engine.space.point_at(point_index)
        with ResultStore(path) as store:
            store.put("fp", point, engine.run_point(point))
        return point

    def test_truncated_trailing_line_is_skipped(self, tmp_path, small_trace):
        path = tmp_path / "store.jsonl"
        first = self.put_one(path, small_trace, point_index=0)
        second = self.put_one(path, small_trace, point_index=1)
        # Simulate a writer killed mid-append: chop the last line in half.
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - len(raw.splitlines(keepends=True)[-1]) // 2 - 1])
        store = ResultStore(path)
        assert store.corrupt_entries == 1
        assert store.loaded == 1
        assert store.get("fp", first) is not None
        assert store.get("fp", second) is None

    def test_garbage_lines_are_skipped(self, tmp_path, small_trace):
        path = tmp_path / "store.jsonl"
        point = self.put_one(path, small_trace)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"json": "but wrong shape"}\n')
            handle.write('{"fingerprint": "fp", "point": {}, "metric_version": 1, "record": {"bad": 1}}\n')
        store = ResultStore(path)
        assert store.corrupt_entries == 3
        assert store.loaded == 1
        assert store.get("fp", point) is not None

    def test_appends_after_partial_write_start_on_fresh_line(self, tmp_path, small_trace):
        path = tmp_path / "store.jsonl"
        point = self.put_one(path, small_trace, point_index=0)
        # Leave a truncated, newline-less tail behind.
        raw = path.read_bytes()
        path.write_bytes(raw + b'{"fingerprint": "fp", "poi')
        engine = make_engine(small_trace, store=None)
        other = engine.space.point_at(1)
        with ResultStore(path) as store:
            assert store.corrupt_entries == 1
            store.put("fp", other, engine.run_point(other))
        reopened = ResultStore(path)
        assert reopened.corrupt_entries == 1  # the old tail, still skipped
        assert reopened.get("fp", point) is not None
        assert reopened.get("fp", other) is not None

    def test_last_write_wins_on_duplicate_keys(self, tmp_path, small_trace):
        path = tmp_path / "store.jsonl"
        engine = make_engine(small_trace, store=None)
        point = engine.space.point_at(0)
        record = engine.run_point(point, label="first")
        with ResultStore(path) as store:
            store.put("fp", point, record)
        # A second writer (e.g. after a metric recalibration under the same
        # version) appends the same key again.
        entry = {
            "fingerprint": "fp",
            "point": point,
            "metric_version": METRIC_VERSION,
            "record": engine.run_point(point, label="second").as_dict(),
        }
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
        store = ResultStore(path)
        assert store.get("fp", point).configuration.label == "second"


def _append_worker(path, worker, entries, barrier):
    """Subprocess body: hammer one shared store file with appends."""
    trace = UniformRandomWorkload(operations=300).generate(seed=7)
    engine = ExplorationEngine(smoke_parameter_space(), trace)
    record = engine.run_point(engine.space.point_at(0), label=f"worker{worker}")
    with ResultStore(path) as store:
        barrier.wait()  # maximise interleaving: everyone appends at once
        for index in range(entries):
            # Distinct fingerprints -> every append is a distinct key.
            store.put(f"worker{worker}-fp{index}", {"i": index}, record)


class TestConcurrentWriters:
    def test_parallel_processes_share_one_store_file(self, tmp_path):
        """Acceptance (concurrent-writer safety): N processes append to one
        store file simultaneously; every entry survives, none is torn."""
        path = tmp_path / "shared.jsonl"
        workers, entries = 4, 25
        context = multiprocessing.get_context()
        barrier = context.Barrier(workers)
        processes = [
            context.Process(
                target=_append_worker, args=(str(path), worker, entries, barrier)
            )
            for worker in range(workers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0
        store = ResultStore(path)
        assert store.corrupt_entries == 0
        assert store.loaded == workers * entries
        for worker in range(workers):
            for index in range(entries):
                assert store.contains(f"worker{worker}-fp{index}", {"i": index})

    def test_racing_writers_of_the_same_key_keep_the_store_loadable(self, tmp_path, small_trace):
        # Two handles that both believe the key is absent (the in-memory
        # view is per-process) append the same key; last write wins.
        path = tmp_path / "store.jsonl"
        engine = make_engine(small_trace, store=None)
        point = engine.space.point_at(0)
        first = ResultStore(path)
        second = ResultStore(path)
        assert first.put("fp", point, engine.run_point(point, label="first"))
        assert second.put("fp", point, engine.run_point(point, label="second"))
        first.close()
        second.close()
        reopened = ResultStore(path)
        assert reopened.corrupt_entries == 0
        assert reopened.get("fp", point).configuration.label == "second"

    def test_contains_does_not_touch_counters(self, tmp_path, small_trace):
        store = ResultStore(tmp_path / "store.jsonl")
        engine = make_engine(small_trace, store=None)
        point = engine.space.point_at(0)
        store.put("fp", point, engine.run_point(point))
        assert store.contains("fp", point)
        assert not store.contains("other", point)
        assert store.hits == 0 and store.misses == 0


class TestEngineStoreIntegration:
    def test_cold_run_populates_store(self, tmp_path, small_trace):
        store = ResultStore(tmp_path / "store.jsonl")
        engine = make_engine(small_trace, store=store)
        database = engine.explore()
        assert database.cache_misses == len(database)
        assert database.store_hits == 0
        assert database.store_misses == len(database)
        assert len(store) == len(database)

    def test_second_run_profiles_nothing(self, tmp_path, small_trace):
        """Acceptance: a warm store answers every point, zero fresh profiles."""
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            first = make_engine(small_trace, store=store).explore()
        with ResultStore(path) as store:
            engine = make_engine(small_trace, store=store)
            second = engine.explore()
            assert engine.cache_misses == 0  # zero fresh profiler evaluations
        assert second.cache_misses == 0
        assert second.store_hits == len(second)
        assert second.store_loaded == len(first)
        # Same records, same Pareto front.
        for a, b in zip(first, second):
            assert a.metrics == b.metrics
            assert a.configuration_id == b.configuration_id
        assert [r.configuration_id for r in first.pareto_records()] == [
            r.configuration_id for r in second.pareto_records()
        ]

    def test_l1_cache_shields_the_store(self, tmp_path, small_trace):
        store = ResultStore(tmp_path / "store.jsonl")
        engine = make_engine(small_trace, store=store)
        point = engine.space.point_at(0)
        engine.evaluate_point(point)
        hits_before = store.hits
        engine.evaluate_point(point)  # answered by L1, store untouched
        assert store.hits == hits_before
        assert engine.cache_hits == 1

    def test_store_hits_do_not_count_as_profiled(self, tmp_path, small_trace):
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            make_engine(small_trace, store=store).explore()
        with ResultStore(path) as store:
            engine = make_engine(small_trace, store=store)
            database = engine.explore()
        summary = database.summary()
        assert summary["store"] == {
            "hits": len(database),
            "misses": 0,
            "loaded": len(database),
        }
        assert "cache" not in summary  # nothing profiled, nothing L1-answered

    def test_different_trace_misses_the_store(self, tmp_path, small_trace):
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            make_engine(small_trace, store=store).explore()
        other_trace = FixedSizesWorkload().generate(seed=7)
        with ResultStore(path) as store:
            engine = make_engine(other_trace, store=store)
            database = engine.explore()
        assert database.store_hits == 0
        assert database.cache_misses == len(database)

    def test_store_survives_pickling_the_engine(self, tmp_path, small_trace):
        import pickle

        store = ResultStore(tmp_path / "store.jsonl")
        engine = make_engine(small_trace, store=store)
        engine.evaluate_point(engine.space.point_at(0))
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.store is None  # workers never ship the store handle
        assert engine.store is store

    def test_settings_change_changes_fingerprint(self, small_trace):
        engine = make_engine(small_trace, store=None)
        other = ExplorationEngine(
            smoke_parameter_space(),
            small_trace,
            settings=ExplorationSettings(payload_access_factor=3.0),
        )
        assert engine.fingerprint != other.fingerprint

    def test_trace_rename_keeps_fingerprint(self, small_trace):
        renamed = UniformRandomWorkload(operations=300).generate(seed=7)
        renamed.name = "renamed"
        a = make_engine(small_trace, store=None)
        b = make_engine(renamed, store=None)
        assert a.fingerprint == b.fingerprint
