"""Tests for the store format seam: binary stores, compaction, O(tail) refresh.

Covers the binary columnar format (round-trip, sniffing, corruption resync,
torn-tail repair), incremental ``refresh()``/reopen byte accounting, the
compaction protocol (provenance preservation, concurrency with appenders and
streaming readers), JSONL<->binary conversion byte-identity, artefact
byte-identity across store formats and across compaction, the distributed
service over a binary store, and the live dashboard sink.
"""

import json
import multiprocessing
import os
import threading

import pytest

from repro.api import ComponentRef, Experiment, ExperimentSpec, SpecError
from repro.core.exploration import ExplorationEngine
from repro.core.space import STANDARD_SPACES, smoke_parameter_space
from repro.core.store import (
    METRIC_VERSION,
    ResultStore,
    StoreError,
    StoreRecordSource,
    compact_store,
    convert_store,
    detect_format,
    store_info,
)
from repro.distrib import Coordinator, Worker
from repro.distrib.worker import EXIT_DONE
from repro.gui.live import LiveDashboardSink
from repro.workloads.synthetic import UniformRandomWorkload


@pytest.fixture(scope="module")
def small_trace():
    return UniformRandomWorkload(operations=300).generate(seed=7)


@pytest.fixture(scope="module")
def records(small_trace):
    """A handful of distinct evaluated records to populate stores with."""
    engine = ExplorationEngine(smoke_parameter_space(), small_trace)
    return [
        engine.run_point(engine.space.point_at(i), label=f"cfg{i:05d}")
        for i in range(4)
    ]


def fill(store, records, fingerprint="fp"):
    for index, record in enumerate(records):
        store.put(fingerprint, {"i": index}, record)


class TestBinaryFormat:
    def test_put_get_round_trip(self, tmp_path, records):
        store = ResultStore(tmp_path / "store.bin", format="binary")
        point = {"i": 0}
        assert store.put("fp", point, records[0]) is True
        assert store.put("fp", point, records[0]) is False
        fetched = store.get("fp", point)
        assert fetched is not None
        assert fetched.metrics == records[0].metrics
        assert fetched.configuration.label == records[0].configuration.label

    def test_reopen_loads_binary_entries(self, tmp_path, records):
        path = tmp_path / "store.bin"
        with ResultStore(path, format="binary") as store:
            fill(store, records)
        reopened = ResultStore(path)
        assert reopened.format == "binary"
        assert reopened.loaded == len(records)
        assert reopened.corrupt_entries == 0
        for index, record in enumerate(records):
            fetched = reopened.get("fp", {"i": index})
            assert fetched is not None
            assert fetched.metrics == record.metrics

    def test_format_is_sniffed_from_the_file(self, tmp_path, records):
        binary, jsonl = tmp_path / "a.bin", tmp_path / "b.jsonl"
        with ResultStore(binary, format="binary") as store:
            fill(store, records[:1])
        with ResultStore(jsonl, format="jsonl") as store:
            fill(store, records[:1])
        assert detect_format(binary) == "binary"
        assert detect_format(jsonl) == "jsonl"
        assert detect_format(tmp_path / "missing.bin") is None

    def test_format_mismatch_is_an_error(self, tmp_path, records):
        path = tmp_path / "store.bin"
        with ResultStore(path, format="binary") as store:
            fill(store, records[:1])
        with pytest.raises(StoreError, match="convert"):
            ResultStore(path, format="jsonl")

    def test_corrupt_frame_resyncs_to_later_entries(self, tmp_path, records):
        path = tmp_path / "store.bin"
        with ResultStore(path, format="binary") as store:
            fill(store, records)
        raw = bytearray(path.read_bytes())
        # Flip a payload byte inside the second frame: its CRC check fails,
        # the marker scan resynchronises, and every other entry survives.
        offsets = sorted(
            offset for offset, _, _ in _frame_offsets(raw) if offset > 16
        )
        raw[offsets[1] + 60] ^= 0x01
        path.write_bytes(bytes(raw))
        store = ResultStore(path)
        assert store.corrupt_entries >= 1
        assert store.loaded == len(records) - store.corrupt_entries
        assert store.get("fp", {"i": 0}) is not None
        assert store.get("fp", {"i": len(records) - 1}) is not None

    def test_torn_tail_is_repaired_on_next_append(self, tmp_path, records):
        path = tmp_path / "store.bin"
        with ResultStore(path, format="binary") as store:
            fill(store, records[:3])
        # Tear the file mid-frame, as a crash during an append would.
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(size - 7)
        store = ResultStore(path)
        assert store.loaded == 2
        store.put("fp", {"i": 3}, records[3])
        store.close()
        healed = ResultStore(path)
        assert healed.loaded == 3
        assert healed.corrupt_entries == 0
        assert healed.get("fp", {"i": 3}) is not None


def _frame_offsets(raw):
    """(offset, length, key) of every well-formed frame in a binary store."""
    from repro.core.store import BinaryStoreFormat

    return [
        (offset, length, entry)
        for offset, length, entry in BinaryStoreFormat().scan(bytes(raw))
    ]


class TestIncrementalRefresh:
    @pytest.mark.parametrize("fmt", ["jsonl", "binary"])
    def test_refresh_consumes_only_appended_bytes(self, tmp_path, records, fmt):
        path = tmp_path / f"store.{fmt}"
        writer = ResultStore(path, format=fmt)
        reader = ResultStore(path, format=fmt)
        fill(writer, records[:3])
        reader.refresh()
        consumed_after_bulk = reader.bytes_consumed
        assert reader.loaded == 3
        writer.put("fp", {"i": 3}, records[3])
        tail = path.stat().st_size - consumed_after_bulk - (
            16 if fmt == "binary" else 0
        )
        reader.refresh()
        assert reader.loaded == 4
        # O(tail): the second refresh read exactly the one appended entry,
        # not the whole file again.
        assert reader.bytes_consumed == consumed_after_bulk + tail

    @pytest.mark.parametrize("fmt", ["jsonl", "binary"])
    def test_refresh_survives_concurrent_compaction(self, tmp_path, records, fmt):
        path = tmp_path / f"store.{fmt}"
        writer = ResultStore(path, format=fmt)
        # A second writer opened before the fill does not know the keys yet,
        # so its put() appends a superseding duplicate (a dead entry).
        stale = ResultStore(path, format=fmt)
        reader = ResultStore(path, format=fmt)
        fill(writer, records[:2])
        stale.put("fp", {"i": 0}, records[1])  # supersede -> one dead entry
        reader.refresh()
        assert reader.loaded == 3
        assert reader.dead_entries == 1
        compact_store(path)
        writer.put("fp", {"i": 2}, records[2])
        # The inode changed under the reader; refresh re-reads from the top.
        reader.refresh()
        assert reader.dead_entries == 0
        assert reader.get("fp", {"i": 2}) is not None
        assert reader.get("fp", {"i": 0}).configuration.label == (
            records[1].configuration.label
        )


class TestCompaction:
    @pytest.mark.parametrize("fmt", ["jsonl", "binary"])
    def test_compaction_drops_dead_entries_only(self, tmp_path, records, fmt):
        path = tmp_path / f"store.{fmt}"
        stale = ResultStore(path, format=fmt)  # opened before the fill
        with ResultStore(path, format=fmt) as store:
            fill(store, records)
        with stale:  # supersede every key once -> all-dead duplicates
            fill(stale, records)
        before = store_info(path)
        assert before["dead"] > 0
        stats = compact_store(path)
        assert stats["live"] == before["live"]
        assert stats["dead"] == before["dead"]
        assert stats["bytes_after"] < stats["bytes_before"]
        after = store_info(path)
        assert after["entries"] == after["live"] == before["live"]
        assert after["dead"] == 0

    def test_compaction_preserves_payload_bytes_and_order(self, tmp_path, records):
        path = tmp_path / "store.jsonl"
        stale = ResultStore(path)  # opened before the fill
        with ResultStore(path) as store:
            fill(store, records)
        with stale:
            stale.put("fp", {"i": 1}, records[0])  # supersede entry 1
        lines = path.read_text().splitlines()
        # Live set order is first occurrence, value is last write: the
        # superseding payload lands at the superseded key's position.
        survivors = [lines[0], lines[4], lines[2], lines[3]]
        compact_store(path)
        assert path.read_text().splitlines() == survivors

    def test_auto_compact_threshold(self, tmp_path, records):
        path = tmp_path / "store.bin"
        stale = ResultStore(path, format="binary")  # opened before the fill
        with ResultStore(path, format="binary") as store:
            fill(store, records)
        with stale:
            fill(stale, records[:3])  # 3 dead entries
        store = ResultStore(path, auto_compact=3)
        assert store.dead_entries == 0
        assert store.loaded == len(records)
        assert store_info(path)["entries"] == len(records)

    def test_auto_compact_rejects_non_positive(self, tmp_path):
        with pytest.raises(StoreError, match="auto_compact"):
            ResultStore(tmp_path / "s.jsonl", auto_compact=0)

    def test_compact_can_change_format(self, tmp_path, records):
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            fill(store, records)
        compact_store(path, output_format="binary")
        store = ResultStore(path)
        assert store.format == "binary"
        assert store.loaded == len(records)


def _concurrent_appender(path, fmt, count, barrier):
    """Subprocess body: append entries while the parent compacts the store."""
    trace = UniformRandomWorkload(operations=300).generate(seed=7)
    engine = ExplorationEngine(smoke_parameter_space(), trace)
    record = engine.run_point(engine.space.point_at(0), label="appender")
    with ResultStore(path, format=fmt) as store:
        barrier.wait()
        for index in range(count):
            store.put(f"live-fp{index}", {"i": index}, record)


class TestCompactionConcurrency:
    @pytest.mark.parametrize("fmt", ["jsonl", "binary"])
    def test_compact_while_a_writer_appends(self, tmp_path, records, fmt):
        """No append is lost when compaction replaces the file mid-run."""
        path = tmp_path / f"shared.{fmt}"
        stale = ResultStore(path, format=fmt)  # opened before the fill
        with ResultStore(path, format=fmt) as store:
            fill(store, records)
        with stale:
            fill(stale, records)  # guarantee dead entries to reclaim
        count = 40
        context = multiprocessing.get_context()
        barrier = context.Barrier(2)
        process = context.Process(
            target=_concurrent_appender, args=(str(path), fmt, count, barrier)
        )
        process.start()
        barrier.wait()
        compact_store(path)
        process.join(timeout=120)
        assert process.exitcode == 0
        final = ResultStore(path)
        assert final.corrupt_entries == 0
        # Every pre-compaction live key and every concurrent append survived.
        assert final.loaded >= len(records) + count
        for index in range(count):
            assert final.get(f"live-fp{index}", {"i": index}) is not None

    def test_streaming_reader_survives_compaction(self, tmp_path, records):
        """A StoreRecordSource mid-iteration keeps its snapshot across an
        os.replace of the underlying path."""
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            fill(store, records)
        source = StoreRecordSource(path, "fp")
        iterator = iter(source)
        first = next(iterator)
        compact_store(path, output_format="binary")
        rest = list(iterator)
        assert len([first, *rest]) == len(records)
        assert source.corrupt_entries == 0


class TestConversionRoundTrip:
    def test_jsonl_binary_jsonl_reproduces_the_original_bytes(
        self, tmp_path, records
    ):
        path = tmp_path / "store.jsonl"
        stale = ResultStore(path)  # opened before the fill
        with ResultStore(path) as store:
            fill(store, records)
        with stale:
            stale.put("fp", {"i": 0}, records[1])  # keep a superseded dup too
        original = path.read_bytes()
        convert_store(path, tmp_path / "store.bin", "binary")
        convert_store(tmp_path / "store.bin", tmp_path / "back.jsonl", "jsonl")
        assert (tmp_path / "back.jsonl").read_bytes() == original

    def test_conversion_refuses_an_in_place_rewrite(self, tmp_path, records):
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            fill(store, records[:1])
        with pytest.raises(StoreError, match="compact"):
            convert_store(path, path, "binary")


def run_spec(tmp_path, name, store=None, sink=None, **overrides):
    spec = ExperimentSpec.from_dict(
        {
            "spec_version": 1,
            "workload": {"name": "uniform", "params": {"operations": 300}},
            "space": "smoke",
            "seed": 1,
            **({"store": store} if store else {}),
            **({"sink": sink} if sink else {}),
            **overrides,
        }
    )
    result = Experiment(spec).run()
    artefact = tmp_path / name
    result.database.to_json(artefact)
    return result, artefact.read_bytes()


def _without_store_counters(artefact_bytes):
    document = json.loads(artefact_bytes)
    document.get("provenance", document).pop("store", None)
    document.pop("store", None)
    return document


class TestArtefactIdentityAcrossFormats:
    def test_cold_and_warm_runs_match_across_store_formats(self, tmp_path):
        _, baseline = run_spec(tmp_path, "none.json")
        artefacts = {}
        for fmt in ("jsonl", "binary"):
            store = {"name": fmt, "params": {"path": str(tmp_path / f"s.{fmt}")}}
            _, cold = run_spec(tmp_path, f"{fmt}-cold.json", store=store)
            warm_result, warm = run_spec(tmp_path, f"{fmt}-warm.json", store=store)
            artefacts[fmt] = (cold, warm)
            # Results are byte-identical to a store-less run; only the
            # store hit counters in the provenance block may differ.
            assert _without_store_counters(cold) == _without_store_counters(baseline)
            # The warm run was answered entirely from the store.
            assert warm_result.counters["store_hits"] == 8
        assert artefacts["jsonl"][0] == artefacts["binary"][0]
        assert artefacts["jsonl"][1] == artefacts["binary"][1]

    def test_artefacts_match_before_and_after_compaction(self, tmp_path):
        path = tmp_path / "s.bin"
        store = {"name": "binary", "params": {"path": str(path)}}
        run_spec(tmp_path, "cold.json", store=store)
        _, before = run_spec(tmp_path, "before.json", store=store)
        # Duplicate every frame (the bytes past the 16-byte header): the
        # store now carries one superseding duplicate per key — 50% dead.
        raw = path.read_bytes()
        path.write_bytes(raw + raw[16:])
        doubled = store_info(path)
        assert doubled["dead"] == doubled["live"] == 8
        stats = compact_store(path)
        assert stats["bytes_after"] < stats["bytes_before"]
        info = store_info(path)
        assert info["entries"] == info["live"] == 8 and info["dead"] == 0
        result, after = run_spec(tmp_path, "after.json", store=store)
        assert after == before
        assert result.counters["store_hits"] == 8

    @pytest.mark.parametrize("space_name", sorted(STANDARD_SPACES))
    def test_sampled_artefacts_match_across_formats_per_space(
        self, tmp_path, space_name
    ):
        overrides = {"space": space_name, "sample": 3, "sample_seed": 5}
        artefacts = {}
        for fmt in ("jsonl", "binary"):
            store = {
                "name": fmt,
                "params": {"path": str(tmp_path / f"{space_name}.{fmt}")},
            }
            _, artefacts[fmt] = run_spec(
                tmp_path, f"{space_name}-{fmt}.json", store=store, **overrides
            )
        assert artefacts["jsonl"] == artefacts["binary"]

    @pytest.mark.parametrize("workload", ["bursty", "easyport"])
    def test_sampled_artefacts_match_across_formats_per_workload(
        self, tmp_path, workload
    ):
        params = {"bursty": {"bursts": 3, "burst_length": 20}, "easyport": {"packets": 200}}
        overrides = {
            "workload": {"name": workload, "params": params[workload]},
            "sample": 3,
            "sample_seed": 5,
        }
        artefacts = {}
        for fmt in ("jsonl", "binary"):
            store = {
                "name": fmt,
                "params": {"path": str(tmp_path / f"{workload}.{fmt}")},
            }
            _, artefacts[fmt] = run_spec(
                tmp_path, f"{workload}-{fmt}.json", store=store, **overrides
            )
        assert artefacts["jsonl"] == artefacts["binary"]


class TestSpecStoreValidation:
    def test_auto_compact_flows_to_the_store(self, tmp_path):
        store = {
            "name": "binary",
            "params": {"path": str(tmp_path / "s.bin"), "auto_compact": 2},
        }
        result, _ = run_spec(tmp_path, "a.json", store=store)
        assert len(result.database) == 8

    def test_bad_auto_compact_is_a_spec_error(self, tmp_path):
        store = {
            "name": "jsonl",
            "params": {"path": str(tmp_path / "s.jsonl"), "auto_compact": 0},
        }
        with pytest.raises(SpecError, match="auto_compact"):
            run_spec(tmp_path, "a.json", store=store)

    def test_unknown_store_kind_is_a_spec_error(self, tmp_path):
        with pytest.raises(SpecError, match="store.name"):
            run_spec(tmp_path, "a.json", store={"name": "sqlite"})


def distrib_spec(**overrides) -> ExperimentSpec:
    return ExperimentSpec.from_dict(
        {
            "spec_version": 1,
            "workload": {"name": "uniform", "params": {"operations": 300}},
            "space": "smoke",
            "seed": 1,
            **overrides,
        }
    )


class TestDistributedBinaryStore:
    @pytest.mark.parametrize("fmt", ["jsonl", "binary"])
    def test_served_sweep_is_format_independent(self, tmp_path, fmt):
        spec = distrib_spec(
            store={"name": fmt, "params": {"path": str(tmp_path / f"shared.{fmt}")}}
        )
        coordinator = Coordinator(
            spec,
            host="127.0.0.1",
            port=0,
            log=lambda line: None,
            lease_size=3,
        )
        thread = threading.Thread(target=coordinator.serve, daemon=True)
        thread.start()
        deadline = 50
        while coordinator.address is None and deadline:
            threading.Event().wait(0.1)
            deadline -= 1
        assert coordinator.address is not None
        worker = Worker(coordinator.address, name="w1", log=lambda line: None)
        assert worker.run() == EXIT_DONE
        thread.join(timeout=30)
        assert not thread.is_alive()
        database = coordinator.database
        assert database is not None and len(database) == 8
        assert detect_format(tmp_path / f"shared.{fmt}") == fmt
        # The shared store answers a plain local run byte-for-byte.
        artefact = tmp_path / f"served-{fmt}.json"
        database.to_json(artefact)
        _, local = run_spec(tmp_path, f"local-{fmt}.json")
        assert artefact.read_bytes() == local


class _Stream:
    """A minimal non-TTY text stream capturing writes."""

    def __init__(self):
        self.chunks = []

    def write(self, text):
        self.chunks.append(text)

    def flush(self):
        pass


class TestLiveDashboardSink:
    def test_accepts_records_and_tracks_ranges(self, records):
        stream = _Stream()
        sink = LiveDashboardSink(interval=0.0, stream=stream)
        for record in records:
            sink.accept(record)
        assert sink.seen == len(records)
        assert sink.renders >= 1
        assert sink.rate() > 0
        for name, (low, high) in sink.ranges.items():
            assert low <= high
        joined = "".join(stream.chunks)
        assert "sweep:" in joined and "front:" in joined

    def test_throttles_below_the_interval(self, records):
        sink = LiveDashboardSink(interval=3600.0, stream=_Stream())
        for record in records:
            sink.accept(record)
        # The first accept renders immediately; the rest are throttled.
        assert sink.renders == 1
        sink.finish()
        assert sink.renders == 2

    def test_dashboard_run_is_artefact_neutral(self, tmp_path, capsys):
        _, baseline = run_spec(tmp_path, "plain.json")
        result, dashed = run_spec(
            tmp_path, "dashed.json", sink={"name": "dashboard", "params": {"interval": 0}}
        )
        assert dashed == baseline
        sink = result.sink
        assert sink.seen == len(result.database)
        assert sink.renders >= 1
        # Engine counters were attached and mirrored into the status block.
        assert any("memo" in line for line in sink.status_lines())
