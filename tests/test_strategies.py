"""Unit tests for the surrogate-guided search portfolio (repro.core.strategies).

Covers the NSGA-II machinery (fast non-dominated sorting, crowding
distance), the TPE density model, the random-forest regressor, and the
strategy-level contracts all three new strategies share: budget respect,
fixed-seed determinism, and the ``surrogate_skips`` accounting.
"""

import random

import pytest

from repro.core.exploration import ExplorationEngine
from repro.core.pareto import pareto_rank
from repro.core.search import SearchBudget
from repro.core.space import compact_parameter_space
from repro.core.strategies import (
    NSGA2Search,
    RandomForest,
    RegressionTree,
    SurrogateSearch,
    TPESearch,
    crowding_distance,
    fast_non_dominated_sort,
)
from repro.workloads.synthetic import UniformRandomWorkload


@pytest.fixture(scope="module")
def trace():
    return UniformRandomWorkload(operations=300).generate(seed=7)


def make_engine(trace):
    return ExplorationEngine(compact_parameter_space(), trace)


class TestFastNonDominatedSort:
    def test_single_front(self):
        fronts = fast_non_dominated_sort([(1, 2), (2, 1)])
        assert fronts == [[0, 1]]

    def test_layered_fronts(self):
        fronts = fast_non_dominated_sort([(1, 1), (2, 2), (3, 3)])
        assert fronts == [[0], [1], [2]]

    def test_empty(self):
        assert fast_non_dominated_sort([]) == []

    def test_duplicates_share_a_front(self):
        fronts = fast_non_dominated_sort([(1, 1), (1, 1), (2, 2)])
        assert fronts == [[0, 1], [2]]

    def test_property_matches_pareto_rank(self):
        # Front membership must agree with the reference layering for
        # arbitrary vector sets (discrete values force plenty of ties).
        rng = random.Random(11)
        for _ in range(50):
            count = rng.randrange(1, 30)
            vectors = [
                tuple(rng.randrange(0, 5) for _ in range(3)) for _ in range(count)
            ]
            ranks = pareto_rank(vectors)
            fronts = fast_non_dominated_sort(vectors)
            by_sort = {
                index: rank for rank, front in enumerate(fronts) for index in front
            }
            assert by_sort == {index: rank for index, rank in enumerate(ranks)}

    def test_every_index_appears_exactly_once(self):
        rng = random.Random(2)
        vectors = [tuple(rng.random() for _ in range(4)) for _ in range(40)]
        fronts = fast_non_dominated_sort(vectors)
        flat = [index for front in fronts for index in front]
        assert sorted(flat) == list(range(40))


class TestCrowdingDistance:
    def test_boundaries_are_infinite(self):
        vectors = [(0, 4), (1, 3), (2, 2), (3, 1), (4, 0)]
        distances = crowding_distance(vectors, [0, 1, 2, 3, 4])
        assert distances[0] == float("inf")
        assert distances[4] == float("inf")

    def test_isolated_point_beats_crowded_point(self):
        # Objective space 0..10: point 2 sits in a tight cluster, point 1
        # is isolated — the isolated one must get the larger distance.
        vectors = [(0, 10), (5, 5), (8.8, 1.2), (9, 1), (9.2, 0.8), (10, 0)]
        distances = crowding_distance(vectors, list(range(6)))
        assert distances[1] > distances[3]

    def test_tiny_fronts_are_all_boundary(self):
        vectors = [(1, 2), (2, 1)]
        assert crowding_distance(vectors, [0, 1]) == {
            0: float("inf"),
            1: float("inf"),
        }

    def test_zero_span_objective_contributes_nothing(self):
        vectors = [(1, 7), (2, 7), (3, 7)]
        distances = crowding_distance(vectors, [0, 1, 2])
        assert distances[0] == float("inf")
        assert distances[2] == float("inf")
        assert distances[1] == pytest.approx(2 / 2)  # only the first objective


class TestRegressionForest:
    def rows(self, rng, count=60, features=5):
        return [
            tuple(float(rng.randrange(0, 4)) for _ in range(features))
            for _ in range(count)
        ]

    def test_constant_targets_predict_the_constant(self):
        rng = random.Random(0)
        rows = self.rows(rng)
        tree = RegressionTree().fit(rows, [3.5] * len(rows), random.Random(1))
        assert tree.predict_row(rows[0]) == pytest.approx(3.5)

    def test_learns_an_additive_function(self):
        rng = random.Random(3)
        rows = self.rows(rng, count=120)
        targets = [sum(row) for row in rows]
        forest = RandomForest(trees=10, max_depth=8).fit(rows, targets, random.Random(4))
        predictions = forest.predict_batch(rows)
        mean = sum(targets) / len(targets)
        baseline = sum((t - mean) ** 2 for t in targets)
        residual = sum((t - p) ** 2 for t, p in zip(targets, predictions))
        # The forest must explain most of the variance of a learnable target.
        assert residual < 0.25 * baseline

    def test_batch_prediction_matches_per_row_walks(self):
        # The (optionally numpy-accelerated) batch path must return exactly
        # the scalar tree walk's floats.
        rng = random.Random(5)
        rows = self.rows(rng, count=80)
        targets = [row[0] * 2 + row[3] for row in rows]
        forest = RandomForest(trees=6).fit(rows, targets, random.Random(6))
        queries = self.rows(rng, count=50)
        assert forest.predict_batch(queries) == [
            forest.predict_row(row) for row in queries
        ]

    def test_fit_is_deterministic_for_a_seeded_rng(self):
        rng = random.Random(7)
        rows = self.rows(rng, count=40)
        targets = [row[1] - row[2] for row in rows]
        first = RandomForest(trees=5).fit(rows, targets, random.Random(8))
        second = RandomForest(trees=5).fit(rows, targets, random.Random(8))
        queries = self.rows(rng, count=20)
        assert first.predict_batch(queries) == second.predict_batch(queries)

    def test_invalid_construction_and_fit_rejected(self):
        with pytest.raises(ValueError):
            RandomForest(trees=0)
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RandomForest().fit([], [], random.Random(0))
        with pytest.raises(ValueError):
            RandomForest().fit([(1.0,)], [1.0, 2.0], random.Random(0))


class TestTPEModel:
    def test_histograms_are_laplace_smoothed_distributions(self, trace):
        engine = make_engine(trace)
        search = TPESearch(engine, SearchBudget(evaluations=8, seed=1))
        points = [engine.space.point_at(i) for i in (0, 1, 2)]
        model = search._histograms(points)
        for parameter in engine.space:
            weights = model[parameter.name]
            assert sum(weights.values()) == pytest.approx(1.0)
            # Smoothing: even unobserved values keep non-zero density.
            assert min(weights.values()) > 0.0

    def test_split_puts_infeasible_members_in_rest(self, trace):
        engine = make_engine(trace)
        search = TPESearch(engine, SearchBudget(evaluations=8, seed=1))
        database_records = engine.evaluate_points(
            [(engine.space.point_at(i), f"p{i}") for i in range(8)]
        )
        members = [
            (engine.space.point_at(i), record)
            for i, record in enumerate(database_records)
        ]
        good, rest = search._split(members)
        feasible = [m for m in members if m[1].feasible]
        assert len(good) == max(1, int(search.gamma * len(feasible) + 0.999999))
        assert len(good) + len(rest) == len(members)
        for point, record in members:
            if not record.feasible:
                assert point in rest

    def test_invalid_params_rejected(self, trace):
        engine = make_engine(trace)
        with pytest.raises(ValueError):
            TPESearch(engine, gamma=1.5)
        with pytest.raises(ValueError):
            TPESearch(engine, batch=0)


class TestStrategyContracts:
    CASES = [
        (NSGA2Search, dict(population=5, offspring=5)),
        (TPESearch, dict(startup=5, batch=4, candidates=20)),
        (
            SurrogateSearch,
            dict(initial=5, candidates=24, surrogate_fraction=0.25, trees=4, depth=3),
        ),
    ]

    @pytest.mark.parametrize("cls,params", CASES, ids=["nsga2", "tpe", "surrogate"])
    def test_budget_is_respected_and_spent(self, trace, cls, params):
        engine = make_engine(trace)
        database = cls(engine, SearchBudget(evaluations=18, seed=3), **params).run()
        assert len(database) == 18  # budget fully used on the 128-point space

    @pytest.mark.parametrize("cls,params", CASES, ids=["nsga2", "tpe", "surrogate"])
    def test_fixed_seed_runs_are_identical(self, trace, tmp_path, cls, params):
        names = iter(("a.json", "b.json"))
        payloads = []
        for _ in range(2):
            engine = make_engine(trace)
            database = cls(engine, SearchBudget(evaluations=16, seed=5), **params).run()
            path = tmp_path / next(names)
            database.to_json(path)
            payloads.append(path.read_bytes())
        assert payloads[0] == payloads[1]

    def test_nsga2_invalid_params_rejected(self, trace):
        engine = make_engine(trace)
        with pytest.raises(ValueError):
            NSGA2Search(engine, population=1)
        with pytest.raises(ValueError):
            NSGA2Search(engine, mutation_rate=1.5)

    def test_surrogate_invalid_params_rejected(self, trace):
        engine = make_engine(trace)
        with pytest.raises(ValueError):
            SurrogateSearch(engine, surrogate_fraction=0.0)
        with pytest.raises(ValueError):
            SurrogateSearch(engine, trees=0)

    def test_strategies_reach_most_of_the_true_hypervolume(self, trace):
        """Acceptance: with a ~19 % budget of the compact space, every
        portfolio member recovers well over half of the exhaustive front's
        hypervolume on every seed tried (the full quality-vs-evaluations
        curves, with their much tighter gates, live in
        benchmarks/test_search_quality.py)."""
        from repro.core.pareto import hypervolume, reference_point

        exhaustive = make_engine(trace).explore()
        truth_vectors = [
            record.metric_vector() for record in exhaustive.feasible_records()
        ]
        reference = reference_point(truth_vectors)
        truth = hypervolume(
            [record.metric_vector() for record in exhaustive.pareto_records()],
            reference,
        )

        def quality(database):
            vectors = [record.metric_vector() for record in database.pareto_records()]
            return hypervolume(vectors, reference) / truth

        for cls, params in self.CASES:
            for seed in (2, 5, 9):
                budget = SearchBudget(evaluations=24, seed=seed)
                achieved = quality(cls(make_engine(trace), budget, **params).run())
                assert achieved > 0.7, (cls.name, seed, achieved)


class TestSurrogateSkipAccounting:
    def run_surrogate(self, trace, prune=False):
        engine = make_engine(trace)
        search = SurrogateSearch(
            engine,
            SearchBudget(evaluations=20, seed=4),
            initial=5,
            candidates=32,
            surrogate_fraction=0.25,
            trees=4,
            depth=3,
            prune=prune,
        )
        return search, search.run()

    def test_model_discards_count_as_surrogate_skips_only(self, trace):
        # Without pruning there is no prefix profiling at all, so every
        # skip recorded must come from the learned model.
        search, database = self.run_surrogate(trace)
        assert search.surrogate_skips > 0
        assert search.prune_skipped == 0
        assert search.prune_predicted == 0
        assert database.surrogate_skips == search.surrogate_skips

    def test_surrogate_skips_surface_everywhere(self, trace, tmp_path):
        from repro.core.reporting import exploration_report
        from repro.core.results import ResultDatabase

        search, database = self.run_surrogate(trace)
        summary = database.summary()
        assert summary["pruning"]["surrogate"] == search.surrogate_skips
        path = tmp_path / "db.json"
        database.to_json(path)
        loaded = ResultDatabase.from_json(path)
        assert loaded.surrogate_skips == search.surrogate_skips
        report = exploration_report(database)
        assert f"Surrogate skips: {search.surrogate_skips}" in report

    def test_dashboard_shows_surrogate_counter(self, trace):
        import io

        from repro.gui.live import LiveDashboardSink

        search, _ = self.run_surrogate(trace)
        sink = LiveDashboardSink(interval=0.0, stream=io.StringIO())
        sink.attach_strategy(search)
        assert any(
            f"surrogate {search.surrogate_skips}" in line
            for line in sink.status_lines()
        )

    def test_experiment_counters_include_surrogate_skips(self):
        from repro.api import ComponentRef, Experiment, ExperimentSpec

        spec = ExperimentSpec(
            workload=ComponentRef("uniform", {"operations": 300}),
            space=ComponentRef("compact"),
            strategy=ComponentRef(
                "surrogate",
                {
                    "budget": 15,
                    "initial": 5,
                    "candidates": 24,
                    "surrogate_fraction": 0.25,
                    "trees": 3,
                    "depth": 3,
                },
            ),
            seed=7,
        )
        result = Experiment(spec).run()
        assert result.counters["surrogate_skips"] == result.database.surrogate_skips
        assert result.counters["surrogate_skips"] > 0
