"""Streaming workload subsystem: ingestion, segment replay, windows.

The load-bearing property: replaying a trace as compiled *segments* —
any segmentation, including one event per segment — is byte-identical to
the one-shot compile-and-replay, on every standard parameter space.  That
identity is what lets million-event logs stream through in bounded memory
while producing exactly the artefacts the in-memory paths produce.
"""

import gzip
import json
import random

import pytest

from repro.core.configuration import configuration_from_point
from repro.core.exploration import ExplorationEngine
from repro.core.factory import AllocatorFactory
from repro.core.reporting import exploration_report
from repro.core.results import ResultDatabase
from repro.core.space import STANDARD_SPACES
from repro.gui.live import LiveDashboardSink
from repro.memhier.hierarchy import embedded_two_level
from repro.profiling.compiled import SegmentedTraceCompiler, compile_trace
from repro.profiling.logformat import write_log
from repro.profiling.metrics import LevelMetrics, MetricSet, ProfileResult
from repro.profiling.profiler import Profiler, ProfilerOptions, SegmentReplaySession
from repro.stream import (
    ProfilingLogSource,
    StreamFormatError,
    SyntheticSource,
    TraceFileSource,
    WindowSpec,
    compile_stream,
    iter_event_chunks,
    stream_profile,
    windowed_exploration,
)
from repro.workloads import (
    DiurnalWorkload,
    RequestBurstWorkload,
    SessionChurnWorkload,
    UniformRandomWorkload,
    load_trace,
    round_trip_equal,
    save_trace,
)
from repro.workloads.easyport import EasyportWorkload


def result_bytes(result):
    return json.dumps(result.as_dict(), sort_keys=True, default=repr).encode()


def allocator_state(allocator):
    """Full observable allocator end state, as comparable plain data."""
    state = {
        "owner": sorted((a, p.name) for a, p in allocator._owner_of.items()),
        "dispatch": allocator.dispatch_accesses,
        "live_blocks": allocator.live_blocks,
    }
    for pool in allocator.pools:
        free_list = getattr(pool, "free_list", None)
        state[pool.name] = {
            "live": sorted(
                (a, b.size, b.requested_size, b.status.value, b.pool_name)
                for a, b in pool._live.items()
            ),
            "freed": sorted(pool._freed_addresses),
            "free_list": (
                [
                    (b.address, b.size, b.status.value, b.requested_size, b.pool_name)
                    for b in free_list.blocks()
                ]
                if free_list is not None
                else None
            ),
            "insertion_visits": (
                free_list.last_insertion_visits if free_list is not None else None
            ),
            "stats": pool.stats.snapshot(),
        }
    return json.dumps(state, sort_keys=True)


def random_cuts(length, rng):
    """A random segmentation of [0, length) into contiguous chunks."""
    cuts = sorted(rng.sample(range(1, length), min(rng.randint(1, 8), length - 1)))
    return [0] + cuts + [length]


def build(trace, point, hierarchy=None):
    hierarchy = hierarchy or embedded_two_level()
    factory = AllocatorFactory(hierarchy)
    configuration = configuration_from_point(
        point,
        hot_sizes=trace.hot_sizes(top=8),
        scratchpad_module=hierarchy.fastest.name,
        main_module=hierarchy.background_module.name,
    )
    return factory.build(configuration)


def oneshot(trace, point, hierarchy=None, **options):
    built = build(trace, point, hierarchy)
    profiler = Profiler(built.mapping, options=ProfilerOptions(**options))
    result = profiler.run(built.allocator, trace, "under-test")
    return result, built.allocator


def segmented(trace, point, offsets, hierarchy=None, snapshot_every=False, **options):
    built = build(trace, point, hierarchy)
    profiler = Profiler(built.mapping, options=ProfilerOptions(**options))
    session = SegmentReplaySession(profiler, built.allocator, name=trace.name)
    compiler = SegmentedTraceCompiler(trace.name)
    events = trace.events
    for start, stop in zip(offsets, offsets[1:]):
        session.replay_segment(compiler.feed(events[start:stop]))
        if snapshot_every:
            session.snapshot("under-test")
    assert compiler.fingerprint() == trace.fingerprint()
    return session.finish("under-test"), built.allocator


class TestSegmentedCompiler:
    def test_concatenated_segments_equal_oneshot_compile(self):
        trace = SessionChurnWorkload(ticks=300).generate(seed=5)
        whole = compile_trace(trace)
        compiler = SegmentedTraceCompiler(trace.name)
        rng = random.Random(9)
        offsets = random_cuts(len(trace), rng)
        segments = [
            compiler.feed(trace.events[start:stop])
            for start, stop in zip(offsets, offsets[1:])
        ]
        assert b"".join(s.kinds for s in segments) == whole.kinds
        for column in ("sizes", "request_ids", "timestamps", "slots"):
            joined = [v for s in segments for v in getattr(s, column)]
            assert joined == list(getattr(whole, column)), column
        slot_sizes = [v for s in segments for v in s.slot_sizes]
        assert slot_sizes == list(whole.slot_sizes)
        assert compiler.slot_count == whole.slot_count
        assert compiler.fingerprint() == trace.fingerprint()
        assert [s.slot_base for s in segments] == [
            sum(seg.slot_count for seg in segments[:i]) for i in range(len(segments))
        ]

    def test_chunking_bounds_and_order(self):
        source = SyntheticSource(operations=1000, live_limit=32, seed=1)
        chunks = list(iter_event_chunks(source.events(), 64))
        assert all(len(chunk) <= 64 for chunk in chunks)
        assert sum(len(chunk) for chunk in chunks) == sum(1 for _ in source.events())
        with pytest.raises(ValueError):
            list(iter_event_chunks([], 0))


class TestSegmentedReplayIdentity:
    """Satellite: any segmentation replays byte-identically to one-shot."""

    WORKLOAD = staticmethod(lambda: SessionChurnWorkload(ticks=400).generate(seed=7))

    @pytest.mark.parametrize("space_name", sorted(STANDARD_SPACES))
    def test_random_segmentations_match_oneshot(self, space_name):
        trace = self.WORKLOAD()
        space = STANDARD_SPACES[space_name]()
        rng = random.Random(space_name)
        for point in space.sample(3, seed=13):
            reference, reference_alloc = oneshot(trace, point)
            for _trial in range(3):
                offsets = random_cuts(len(trace), rng)
                streamed, streamed_alloc = segmented(trace, point, offsets)
                assert result_bytes(streamed) == result_bytes(reference)
                assert allocator_state(streamed_alloc) == allocator_state(
                    reference_alloc
                )

    def test_single_event_segments(self):
        trace = UniformRandomWorkload(operations=150).generate(seed=3)
        point = STANDARD_SPACES["smoke"]().sample(1, seed=1)[0]
        reference, _ = oneshot(trace, point)
        streamed, _ = segmented(trace, point, list(range(len(trace) + 1)))
        assert result_bytes(streamed) == result_bytes(reference)

    def test_oom_identical(self):
        trace = EasyportWorkload(packets=120).generate(seed=7)
        hierarchy = embedded_two_level(scratchpad_size=2048, main_size=16384)
        rng = random.Random(4)
        saw_oom = False
        for point in STANDARD_SPACES["default"]().sample(4, seed=2):
            reference, reference_alloc = oneshot(trace, point, hierarchy)
            offsets = random_cuts(len(trace), rng)
            streamed, streamed_alloc = segmented(trace, point, offsets, hierarchy)
            assert result_bytes(streamed) == result_bytes(reference)
            assert allocator_state(streamed_alloc) == allocator_state(reference_alloc)
            saw_oom = saw_oom or reference.per_pool["__profile__"]["oom_failures"] > 0
        assert saw_oom, "OOM scenario never triggered; shrink the hierarchy"

    def test_legacy_mode_identical(self):
        trace = UniformRandomWorkload(operations=200).generate(seed=5)
        point = STANDARD_SPACES["compact"]().sample(1, seed=3)[0]
        reference, _ = oneshot(trace, point, fast_replay=False)
        streamed, _ = segmented(
            trace, point, random_cuts(len(trace), random.Random(1)), fast_replay=False
        )
        assert result_bytes(streamed) == result_bytes(reference)

    def test_snapshots_do_not_perturb_the_replay(self):
        trace = RequestBurstWorkload(bursts=12).generate(seed=2)
        point = STANDARD_SPACES["smoke"]().sample(1, seed=5)[0]
        reference, _ = oneshot(trace, point)
        offsets = random_cuts(len(trace), random.Random(8))
        streamed, _ = segmented(trace, point, offsets, snapshot_every=True)
        assert result_bytes(streamed) == result_bytes(reference)


class TestStreamProfile:
    def test_bounded_pipeline_matches_in_memory_run(self):
        trace = DiurnalWorkload(ticks=300).generate(seed=4)
        point = STANDARD_SPACES["smoke"]().sample(1, seed=2)[0]
        reference, _ = oneshot(trace, point)
        built = build(trace, point)
        outcome = stream_profile(
            iter(trace),
            built.mapping,
            built.allocator,
            segment_events=128,
            configuration_id="under-test",
            name=trace.name,
        )
        assert result_bytes(outcome.result) == result_bytes(reference)
        assert outcome.fingerprint == trace.fingerprint()
        assert outcome.events == len(trace)
        assert outcome.segments == -(-len(trace) // 128)

    def test_compile_stream_is_lazy_and_complete(self):
        source = SyntheticSource(operations=500, live_limit=16, seed=6)
        compiler = SegmentedTraceCompiler(source.name)
        total = 0
        for segment in compile_stream(source, segment_events=100, compiler=compiler):
            total += len(segment)
        assert total == compiler.events_seen
        assert compiler.segments == -(-total // 100)


class TestSources:
    def test_trace_file_source_round_trips(self, tmp_path):
        trace = SessionChurnWorkload(ticks=150).generate(seed=1)
        path = tmp_path / "churn.trace"
        save_trace(trace, path)
        source = TraceFileSource(path)
        events = list(source.events())
        assert source.name == trace.name
        rebuilt = load_trace(path)
        assert round_trip_equal(trace, rebuilt)
        assert len(events) == len(trace)
        assert [e.request_id for e in events] == [e.request_id for e in trace]

    def test_trace_file_source_reads_gzip(self, tmp_path):
        trace = UniformRandomWorkload(operations=60).generate(seed=2)
        plain = tmp_path / "t.trace"
        save_trace(trace, plain)
        packed = tmp_path / "t.trace.gz"
        packed.write_bytes(gzip.compress(plain.read_bytes()))
        events = list(TraceFileSource(packed).events())
        assert len(events) == len(trace)

    def test_trace_file_source_strictness_and_torn_tail(self, tmp_path):
        path = tmp_path / "broken.trace"
        path.write_text("A 0 64 0\nX nonsense\nF 0 1\nA 1 32", encoding="utf-8")
        with pytest.raises(StreamFormatError):
            list(TraceFileSource(path).events())
        tolerant = TraceFileSource(path, strict=False)
        events = list(tolerant.events())
        # The interior junk line is skipped; the torn final line is
        # tolerated even by a strict source (counted, never raised).
        assert len(events) == 2
        assert tolerant.skipped_lines == 2
        assert tolerant.truncated_tail == 1
        strict = TraceFileSource(path)
        with pytest.raises(StreamFormatError):
            list(strict.events())

    def test_profiling_log_source_reconstructs_events(self, tmp_path):
        trace = UniformRandomWorkload(operations=80).generate(seed=9)
        result = ProfileResult(configuration_id="cfgA", trace_name=trace.name)
        result.totals = MetricSet(accesses=1, footprint=2, energy_nj=3.0, cycles=4)
        result.per_level["main_memory"] = LevelMetrics("main_memory")
        path = tmp_path / "profile.log"
        write_log(path, [result], trace=trace, include_events=True)
        source = ProfilingLogSource(path)
        events = list(source.events())
        assert len(events) == len(trace)
        # Tags are not echoed into logs; every structural field survives.
        for original, rebuilt in zip(trace, events):
            assert rebuilt.kind == original.kind
            assert rebuilt.request_id == original.request_id
            assert rebuilt.timestamp == original.timestamp
            if original.is_alloc:
                assert rebuilt.size == original.size
        compiler = SegmentedTraceCompiler(trace.name)
        compiler.feed(events)
        assert compiler.slot_count == trace.summary().alloc_count
        # A configuration id that never appears yields nothing.
        assert list(ProfilingLogSource(path, configuration_id="ghost").events()) == []

    def test_synthetic_source_is_deterministic_and_bounded(self):
        source = SyntheticSource(operations=2000, live_limit=50, seed=12)
        first = list(source.events())
        second = list(SyntheticSource(operations=2000, live_limit=50, seed=12).events())
        assert first == second
        live = 0
        peak = 0
        for event in first:
            live += 1 if event.is_alloc else -1
            peak = max(peak, live)
        assert 0 < peak <= 50
        assert live == 0  # fully drained


class TestServerWorkloads:
    @pytest.mark.parametrize(
        "factory",
        [SessionChurnWorkload, RequestBurstWorkload, DiurnalWorkload],
        ids=["sessions", "requests", "diurnal"],
    )
    def test_deterministic_and_valid(self, factory):
        workload = factory()
        first = workload.generate(seed=3)
        second = workload.generate(seed=3)
        assert first.fingerprint() == second.fingerprint()
        assert first.fingerprint() != workload.generate(seed=4).fingerprint()
        first.validate()
        assert workload.describe()

    def test_registered_in_the_registry(self):
        from repro.api import registry

        for name in ("sessions", "requests", "diurnal"):
            workload = registry.workloads.create(name)
            assert len(workload.generate(seed=0)) > 0


class TestWindows:
    def test_window_spec_validation(self):
        with pytest.raises(ValueError):
            WindowSpec()
        with pytest.raises(ValueError):
            WindowSpec(events=10, time=10)
        with pytest.raises(ValueError):
            WindowSpec(events=0)
        assert WindowSpec(events=5).mode == "events"
        assert WindowSpec(time=5).mode == "time"

    def test_split_covers_every_event_in_order(self):
        trace = DiurnalWorkload(ticks=200).generate(seed=1)
        for spec in (WindowSpec(events=97), WindowSpec(time=37)):
            chunks = spec.split(trace)
            flat = [event for chunk in chunks for event in chunk]
            assert flat == list(trace)
            if spec.events is not None:
                assert all(len(chunk) == 97 for chunk in chunks[:-1])

    def test_windowed_totals_byte_identical_to_explore(self):
        trace = DiurnalWorkload(ticks=250).generate(seed=2)
        space = STANDARD_SPACES["smoke"]()
        reference = ExplorationEngine(space, trace).explore()
        engine = ExplorationEngine(space, trace)
        database, analysis = windowed_exploration(engine, WindowSpec(events=400))
        assert json.dumps(
            [r.as_dict() for r in reference], sort_keys=True, default=repr
        ) == json.dumps([r.as_dict() for r in database], sort_keys=True, default=repr)
        assert database.provenance.fingerprint == reference.provenance.fingerprint
        assert len(analysis) == len(WindowSpec(events=400).split(trace))
        assert analysis.configurations == len(database)

    def test_window_fronts_match_batch_pareto(self):
        """Each incremental window front equals a batch Pareto computed
        over independently re-derived per-window vectors."""
        from repro.core.pareto import pareto_front_indices

        trace = SessionChurnWorkload(ticks=250).generate(seed=6)
        space = STANDARD_SPACES["smoke"]()
        engine = ExplorationEngine(space, trace)
        spec = WindowSpec(events=300)
        _database, analysis = windowed_exploration(engine, spec)
        chunks = spec.split(trace)
        shadow = ExplorationEngine(space, trace)
        per_config = {}
        for index, point in shadow.enumerate_points():
            label = f"{shadow.settings.label_prefix}{index:05d}"
            configuration = shadow.configuration_for(point, label=label)
            built = shadow.factory.build(configuration)
            profiler = Profiler(built.mapping, energy_model=shadow.energy_model)
            session = SegmentReplaySession(profiler, built.allocator, name=trace.name)
            compiler = SegmentedTraceCompiler(trace.name)
            previous = MetricSet()
            vectors = []
            for chunk in chunks:
                session.replay_segment(compiler.feed(chunk))
                totals = session.snapshot(configuration.configuration_id).totals
                delta = MetricSet(
                    accesses=totals.accesses - previous.accesses,
                    footprint=totals.footprint,
                    energy_nj=totals.energy_nj - previous.energy_nj,
                    cycles=totals.cycles - previous.cycles,
                )
                vectors.append(delta.values(analysis.metrics))
                previous = totals
            per_config[configuration.configuration_id] = vectors
        labels = list(per_config)
        for window_index in range(len(analysis)):
            vectors = [per_config[label][window_index] for label in labels]
            winners = pareto_front_indices(vectors, key=lambda vector: vector)
            assert set(analysis.front_labels(window_index)) == {
                labels[i] for i in winners
            }

    def test_artifact_round_trip_and_report(self, tmp_path):
        trace = DiurnalWorkload(ticks=200).generate(seed=3)
        engine = ExplorationEngine(STANDARD_SPACES["smoke"](), trace)
        database, analysis = windowed_exploration(engine, WindowSpec(events=300))
        path = tmp_path / "windows.json"
        database.to_json(path)
        restored = ResultDatabase.from_json(path)
        assert restored.windows == json.loads(json.dumps(analysis.as_dict()))
        report = exploration_report(restored, title="windowed")
        assert "Windowed analysis" in report
        assert f"{len(analysis)} windows" in report
        # Ordinary artefacts carry no windows section.
        plain = tmp_path / "plain.json"
        ExplorationEngine(STANDARD_SPACES["smoke"](), trace).explore().to_json(plain)
        assert "windows" not in json.loads(plain.read_text())

    def test_window_aware_store_entries(self, tmp_path):
        from repro.core.store import ResultStore

        trace = SessionChurnWorkload(ticks=150).generate(seed=4)
        store = ResultStore(tmp_path / "store.jsonl")
        engine = ExplorationEngine(
            STANDARD_SPACES["smoke"](), trace, store=store
        )
        database, analysis = windowed_exploration(engine, WindowSpec(events=250))
        point = next(iter(STANDARD_SPACES["smoke"]().points()))
        assert store.get(engine.fingerprint, point) is not None
        for index in range(len(analysis)):
            entry = store.get(f"{engine.fingerprint}:w{index}", point)
            assert entry is not None
        assert store.get(f"{engine.fingerprint}:w{len(analysis)}", point) is None
        store.close()

    def test_dashboard_sink_reports_window_line(self):
        import io

        trace = DiurnalWorkload(ticks=150).generate(seed=5)
        engine = ExplorationEngine(STANDARD_SPACES["smoke"](), trace)
        stream = io.StringIO()
        sink = LiveDashboardSink(interval=0.0, stream=stream)
        database, analysis = windowed_exploration(
            engine, WindowSpec(events=200), sink=sink
        )
        lines = sink.status_lines()
        assert any(line.startswith("windows") for line in lines)
        window_line = next(line for line in lines if line.startswith("windows"))
        assert f"{len(analysis)} x 200 events" in window_line
        assert f"front[{len(analysis) - 1}]" in window_line
        assert sink.seen == len(database)
