"""Streaming-pipeline tests: sinks, live fronts, store-backed reporting.

Covers the streaming refactor end to end:

* records flow into :class:`ResultSink` consumers while the exploration /
  search runs (not from a finished-database snapshot),
* :class:`ResultDatabase` maintains its Pareto front incrementally and
  stays equivalent to the batch computation,
* :class:`StoreRecordSource` replays a persistent store file as an ordered
  record stream (filtered, last-write-wins, re-iterable),
* ``dmexplore report --store`` reproduces the batch report over merged
  shard artefacts **byte-identically**, exports included — the acceptance
  criterion of the streaming rework.
"""

import json

import pytest

from repro.cli import main
from repro.core.exploration import ExplorationEngine, ExplorationSettings, ShardSpec
from repro.core.pareto import pareto_front
from repro.core.results import (
    ResultDatabase,
    ResultSink,
    StreamingParetoSink,
    StreamingResultView,
)
from repro.core.search import RandomSearch, SearchBudget
from repro.core.space import smoke_parameter_space
from repro.core.store import ResultStore, StoreRecordSource
from repro.workloads.synthetic import UniformRandomWorkload


@pytest.fixture(scope="module")
def trace():
    return UniformRandomWorkload(operations=300).generate(seed=7)


@pytest.fixture(scope="module")
def database(trace):
    return ExplorationEngine(smoke_parameter_space(), trace).explore()


class RecordingSink:
    """Test double: remembers arrival order and how often accept() ran."""

    def __init__(self):
        self.records = []

    def accept(self, record):
        self.records.append(record)


class TestResultSinks:
    def test_database_is_a_sink(self):
        assert isinstance(ResultDatabase(), ResultSink)

    def test_explore_streams_every_record_in_order(self, trace):
        engine = ExplorationEngine(smoke_parameter_space(), trace)
        sink = RecordingSink()
        database = engine.explore(sink=sink)
        assert [r.configuration_id for r in sink.records] == [
            r.configuration_id for r in database
        ]

    def test_search_streams_every_record_in_order(self, trace):
        engine = ExplorationEngine(smoke_parameter_space(), trace)
        sink = RecordingSink()
        database = RandomSearch(engine, SearchBudget(evaluations=6, seed=1)).run(
            sink=sink
        )
        assert [r.configuration_id for r in sink.records] == [
            r.configuration_id for r in database
        ]

    def test_streaming_pareto_sink_matches_database_front(self, trace):
        engine = ExplorationEngine(smoke_parameter_space(), trace)
        sink = StreamingParetoSink()
        database = engine.explore(sink=sink)
        assert sink.seen == len(database)
        assert sink.records() == database.pareto_records()
        assert len(sink.front) <= sink.feasible


class TestLiveDatabaseFront:
    def test_front_matches_batch_computation(self, database):
        keys_variants = [None, ["accesses", "footprint"], ["energy_nj"]]
        for keys in keys_variants:
            live = database.pareto_records(keys)
            candidates = database.feasible_records()
            from repro.profiling.metrics import metric_keys

            vector_keys = keys or metric_keys()
            batch = pareto_front(
                candidates, key=lambda r: r.metric_vector(vector_keys)
            )
            assert live == batch

    def test_front_updates_as_records_are_added(self, database):
        incremental = ResultDatabase()
        for record in database:
            incremental.add(record)
            # Query mid-stream: the live front must always equal a batch
            # recomputation over what has arrived so far.
            live = incremental.pareto_records()
            batch = pareto_front(
                incremental.feasible_records(), key=lambda r: r.metric_vector()
            )
            assert live == batch

    def test_trace_name_and_feasible_count(self, database):
        assert database.trace_name == database[0].trace_name
        assert database.feasible_count == len(database.feasible_records())
        assert database.has_feasible


class TestStreamingResultView:
    def test_view_matches_database_queries(self, database):
        view = StreamingResultView(database.records, name=database.name)
        assert len(view) == len(database)
        assert view.trace_name == database.trace_name
        assert view.feasible_count == database.feasible_count
        for metric in ("accesses", "footprint", "energy_nj", "cycles"):
            assert view.metric_range(metric) == database.metric_range(metric)
        assert view.pareto_records() == database.pareto_records()
        assert view.knee_record() == database.knee_record()

    def test_view_csv_identical_to_database_csv(self, database, tmp_path):
        view = StreamingResultView(database.records)
        database.to_csv(tmp_path / "db.csv")
        view.to_csv(tmp_path / "view.csv")
        assert (tmp_path / "db.csv").read_bytes() == (tmp_path / "view.csv").read_bytes()

    def test_empty_view(self):
        view = StreamingResultView([])
        assert len(view) == 0
        assert not view.has_feasible
        with pytest.raises(ValueError):
            view.metric_range("accesses")


class TestStoreRecordSource:
    def _populate(self, path, trace, shard=None):
        settings = ExplorationSettings(shard=shard)
        with ResultStore(path) as store:
            engine = ExplorationEngine(
                smoke_parameter_space(), trace, settings=settings, store=store
            )
            database = engine.explore()
        return engine.fingerprint, database

    def test_streams_in_enumeration_order_with_global_indices(self, tmp_path, trace):
        path = tmp_path / "store.jsonl"
        fingerprint, database = self._populate(path, trace)
        source = StoreRecordSource(path, fingerprint, space=smoke_parameter_space())
        records = list(source)
        assert [r.configuration_id for r in records] == [
            r.configuration_id for r in database
        ]
        assert [r.index for r in records] == [r.index for r in database]
        # Re-iterable: a second pass yields the same stream.
        assert [r.configuration_id for r in source] == [
            r.configuration_id for r in records
        ]

    def test_filters_foreign_fingerprints(self, tmp_path, trace):
        path = tmp_path / "store.jsonl"
        fingerprint, database = self._populate(path, trace)
        with ResultStore(path) as store:
            store.put("other-fingerprint", {"x": 1}, database[0])
        source = StoreRecordSource(path, fingerprint, space=smoke_parameter_space())
        assert len(source) == len(database)
        assert source.foreign_entries == 1

    def test_last_write_wins(self, tmp_path, trace):
        path = tmp_path / "store.jsonl"
        fingerprint, database = self._populate(path, trace)
        # A concurrent shard re-recorded point 0 under a different label.
        point = database[0].parameters
        duplicate = database[0]
        entry = {
            "fingerprint": fingerprint,
            "point": point,
            "metric_version": 1,
            "record": {**duplicate.as_dict(), "trace_name": "rewritten"},
        }
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
        source = StoreRecordSource(path, fingerprint, space=smoke_parameter_space())
        assert len(source) == len(database)
        assert next(iter(source)).trace_name == "rewritten"

    def test_missing_file_is_empty(self, tmp_path):
        source = StoreRecordSource(tmp_path / "absent.jsonl", "fp")
        assert len(source) == 0
        assert list(source) == []


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestStoreBackedReportByteIdentity:
    """Acceptance: report --store over a 3-shard merged store == batch report."""

    @pytest.fixture(scope="class")
    def workspace(self, tmp_path_factory):
        """Three cold shard runs share one store; three warm re-runs produce
        counter-free artefacts that merge into the batch reference."""
        directory = tmp_path_factory.mktemp("store-report")
        store = directory / "shared.jsonl"
        flags = ["--workload", "uniform", "--space", "smoke", "--seed", "1"]
        for phase in ("cold", "warm"):
            for shard in (1, 2, 3):
                out = directory / f"{phase}{shard}.json"
                assert main(
                    ["explore", *flags, "--shard", f"{shard}/3",
                     "--store", str(store), "--out", str(out)]
                ) == 0
        assert main(
            ["merge", str(directory / "warm1.json"), str(directory / "warm2.json"),
             str(directory / "warm3.json"), "--out", str(directory / "merged.json")]
        ) == 0
        return directory, store, flags

    def test_report_is_byte_identical(self, workspace, capsys):
        directory, store, flags = workspace
        capsys.readouterr()
        batch = run_cli(capsys, "report", str(directory / "merged.json"))
        streamed = run_cli(capsys, "report", "--store", str(store), *flags)
        assert streamed == batch

    def test_exports_are_byte_identical(self, workspace, capsys):
        directory, store, flags = workspace
        capsys.readouterr()
        run_cli(
            capsys, "report", str(directory / "merged.json"),
            "--export-dir", str(directory / "batch-art"),
        )
        run_cli(
            capsys, "report", "--store", str(store), *flags,
            "--export-dir", str(directory / "stream-art"),
        )
        batch_files = sorted(p.name for p in (directory / "batch-art").iterdir())
        stream_files = sorted(p.name for p in (directory / "stream-art").iterdir())
        assert batch_files == stream_files and batch_files
        for name in batch_files:
            batch_bytes = (directory / "batch-art" / name).read_bytes()
            stream_bytes = (directory / "stream-art" / name).read_bytes()
            if name.endswith(".gp"):
                # The gnuplot script embeds its own output directory; that
                # is the only permitted difference.
                batch_bytes = batch_bytes.replace(b"batch-art", b"EXPORT")
                stream_bytes = stream_bytes.replace(b"stream-art", b"EXPORT")
            assert batch_bytes == stream_bytes, (
                f"{name} differs between batch and streamed export"
            )

    def test_metrics_selection_flows_through(self, workspace, capsys):
        directory, store, flags = workspace
        capsys.readouterr()
        out = run_cli(
            capsys, "report", "--store", str(store), *flags,
            "--metrics", "accesses", "footprint",
        )
        assert "accesses" in out and "footprint" in out
        table_lines = [line for line in out.splitlines() if line.startswith("energy_nj")]
        assert not table_lines  # deselected metrics leave the trade-off table

    def test_report_requires_exactly_one_input(self, workspace, capsys):
        directory, store, _flags = workspace
        assert main(["report"]) == 2
        assert (
            main(["report", str(directory / "merged.json"), "--store", str(store)])
            == 2
        )
        capsys.readouterr()

    def test_report_store_with_wrong_context_fails_cleanly(self, workspace, capsys):
        _directory, store, _flags = workspace
        code = main(
            ["report", "--store", str(store), "--workload", "uniform",
             "--space", "smoke", "--seed", "99"]
        )
        assert code == 2
        assert "holds no records" in capsys.readouterr().err


class TestReportMetricsSelection:
    def test_report_metrics_on_json_artifact(self, tmp_path, capsys):
        out = tmp_path / "db.json"
        assert main(
            ["explore", "--workload", "uniform", "--space", "smoke",
             "--seed", "1", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        text = run_cli(
            capsys, "report", str(out), "--metrics", "accesses", "cycles",
            "--export-dir", str(tmp_path / "art"),
        )
        assert "accesses" in text
        header = (tmp_path / "art" / "exploration_all.csv").read_text().splitlines()[0]
        assert "accesses" in header and "cycles" in header
        assert "energy_nj" not in header and "footprint" not in header
