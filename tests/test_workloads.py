"""Unit tests for the workload generators and trace I/O."""

import pytest

from repro.profiling.tracer import AllocationTrace
from repro.workloads.base import TraceBuilder
from repro.workloads.easyport import (
    DEFAULT_PACKET_SIZES,
    EasyportWorkload,
    easyport_reference_trace,
)
from repro.workloads.synthetic import (
    BurstyWorkload,
    FixedSizesWorkload,
    PhasedWorkload,
    UniformRandomWorkload,
)
from repro.workloads.traces import (
    TraceFormatError,
    load_trace,
    round_trip_equal,
    save_trace,
)
from repro.workloads.vtc import (
    BITSTREAM_SEGMENT_BYTES,
    TREE_NODE_BYTES,
    VTCWorkload,
    vtc_reference_trace,
)


class TestTraceBuilder:
    def test_scheduled_frees_are_emitted(self):
        builder = TraceBuilder("t", seed=0)
        builder.allocate(10, lifetime=2)
        builder.tick(3)
        assert builder.flush_due() == 1
        trace = builder.finish()
        trace.validate()
        assert trace.summary().leaked_blocks == 0

    def test_explicit_release(self):
        builder = TraceBuilder("t")
        request = builder.allocate(10)
        builder.tick()
        builder.release(request)
        trace = builder.finish()
        assert trace.summary().free_count == 1

    def test_finish_frees_everything(self):
        builder = TraceBuilder("t")
        for _ in range(5):
            builder.allocate(10, lifetime=1000)
        trace = builder.finish()
        assert trace.summary().leaked_blocks == 0

    def test_clock_cannot_go_backwards(self):
        builder = TraceBuilder("t")
        with pytest.raises(ValueError):
            builder.tick(-1)

    def test_negative_lifetime_rejected(self):
        builder = TraceBuilder("t")
        with pytest.raises(ValueError):
            builder.allocate(10, lifetime=-1)


class TestEasyportWorkload:
    def test_trace_is_valid_and_balanced(self):
        trace = EasyportWorkload(packets=300).generate(seed=1)
        trace.validate()
        summary = trace.summary()
        assert summary.leaked_blocks == 0
        assert summary.alloc_count > 300  # descriptor + payload per packet

    def test_deterministic_for_same_seed(self):
        first = EasyportWorkload(packets=200).generate(seed=42)
        second = EasyportWorkload(packets=200).generate(seed=42)
        assert round_trip_equal(first, second)

    def test_different_seeds_differ(self):
        first = EasyportWorkload(packets=200).generate(seed=1)
        second = EasyportWorkload(packets=200).generate(seed=2)
        assert not round_trip_equal(first, second)

    def test_hot_sizes_dominate(self):
        workload = EasyportWorkload(packets=500)
        trace = workload.generate(seed=3)
        histogram = trace.size_histogram()
        hot = set(DEFAULT_PACKET_SIZES)
        hot_allocations = sum(count for size, count in histogram.items() if size in hot)
        assert hot_allocations / sum(histogram.values()) > 0.7

    def test_hot_sizes_listing(self):
        workload = EasyportWorkload()
        assert workload.hot_sizes()[0] == 74  # highest weight in the default mix

    def test_reference_trace_fixed_seed(self):
        assert round_trip_equal(
            easyport_reference_trace(packets=200), easyport_reference_trace(packets=200)
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EasyportWorkload(packets=0)
        with pytest.raises(ValueError):
            EasyportWorkload(ports=0)
        with pytest.raises(ValueError):
            EasyportWorkload(control_ratio=2.0)
        with pytest.raises(ValueError):
            EasyportWorkload(packet_sizes={})

    def test_describe(self):
        assert "Easyport" in EasyportWorkload().describe()


class TestVTCWorkload:
    def test_trace_is_valid_and_balanced(self):
        trace = VTCWorkload(image_width=64, image_height=64).generate(seed=1)
        trace.validate()
        assert trace.summary().leaked_blocks == 0

    def test_tree_nodes_dominate_allocations(self):
        trace = VTCWorkload(image_width=128, image_height=128).generate(seed=1)
        histogram = trace.size_histogram()
        node_allocations = sum(
            count
            for size, count in histogram.items()
            if TREE_NODE_BYTES <= size <= TREE_NODE_BYTES + 8
        )
        assert node_allocations / sum(histogram.values()) > 0.5

    def test_scales_with_image_size(self):
        small = VTCWorkload(image_width=64, image_height=64).generate(seed=1)
        large = VTCWorkload(image_width=256, image_height=256).generate(seed=1)
        assert len(large) > len(small)

    def test_deterministic(self):
        first = VTCWorkload(image_width=64, image_height=64).generate(seed=9)
        second = VTCWorkload(image_width=64, image_height=64).generate(seed=9)
        assert round_trip_equal(first, second)

    def test_hot_sizes(self):
        assert TREE_NODE_BYTES in VTCWorkload().hot_sizes()
        assert BITSTREAM_SEGMENT_BYTES in VTCWorkload().hot_sizes()

    def test_reference_trace(self):
        trace = vtc_reference_trace(image_size=64)
        trace.validate()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            VTCWorkload(image_width=0)
        with pytest.raises(ValueError):
            VTCWorkload(wavelet_levels=0)
        with pytest.raises(ValueError):
            VTCWorkload(coefficients_per_node=0)


class TestSyntheticWorkloads:
    @pytest.mark.parametrize(
        "workload",
        [
            UniformRandomWorkload(operations=300),
            FixedSizesWorkload(operations=300),
            BurstyWorkload(bursts=4, burst_length=30),
            PhasedWorkload(),
        ],
        ids=["uniform", "fixed", "bursty", "phased"],
    )
    def test_traces_valid_and_deterministic(self, workload):
        first = workload.generate(seed=5)
        second = workload.generate(seed=5)
        first.validate()
        assert first.summary().leaked_blocks == 0
        assert round_trip_equal(first, second)

    def test_fixed_sizes_only_uses_declared_sizes(self):
        workload = FixedSizesWorkload(sizes=[32, 64], operations=200)
        histogram = workload.generate(seed=1).size_histogram()
        assert set(histogram) <= {32, 64}

    def test_bursty_peaks_exceed_steady_state(self):
        trace = BurstyWorkload(bursts=3, burst_length=50, quiet_length=50).generate(seed=1)
        profile = [live for _ts, live in trace.live_profile()]
        assert max(profile) > 0
        assert profile[-1] == 0

    def test_fixed_sizes_validation(self):
        with pytest.raises(ValueError):
            FixedSizesWorkload(sizes=[])
        with pytest.raises(ValueError):
            FixedSizesWorkload(sizes=[1, 2], weights=[1.0])

    def test_describe_strings(self):
        assert "uniform" in UniformRandomWorkload().describe()
        assert "phase" in PhasedWorkload().describe()


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        trace = EasyportWorkload(packets=100).generate(seed=4)
        path = tmp_path / "easyport.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert round_trip_equal(trace, loaded)
        assert loaded.name == trace.name

    def test_tags_preserved(self, tmp_path):
        trace = VTCWorkload(image_width=64, image_height=64).generate(seed=4)
        path = tmp_path / "vtc.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert any(event.tag for event in loaded)

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("A 1\nF\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("Z 1 2 3\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_round_trip_equal_detects_differences(self):
        first = AllocationTrace(name="a")
        second = AllocationTrace(name="b")
        assert round_trip_equal(first, second)
        from repro.profiling.events import alloc

        first.append(alloc(0, 8))
        assert not round_trip_equal(first, second)
